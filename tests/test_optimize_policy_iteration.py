"""Tests for exact policy iteration (`repro.optimize.policy_iteration`).

The acceptance check is a brute-force dense reference: on the mini model the
whole policy space is enumerable, each induced chain's gain is computed from
a dense stationary solve, and policy iteration must land on the exact
minimum (to 1e-9) for both long-run objectives.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.analysis import AnalysisSession, MeasureKind, MeasureRequest
from repro.casestudy.facility import LINE2, build_line
from repro.ctmc.linsolve import SolverEngine
from repro.optimize import (
    OptimizeError,
    OptimizerStats,
    RepairCTMDP,
    RepairPolicy,
    default_candidates,
    evaluate_policy,
    policy_iteration,
)
from tests.helpers import make_mini_model


def dense_gain(ctmdp: RepairCTMDP, policy: RepairPolicy, costs: np.ndarray) -> float:
    """Reference long-run average: stationary distribution, densely."""
    q = ctmdp.induced_chain(policy).generator_matrix().toarray()
    n = ctmdp.num_states
    system = np.vstack([q.T, np.ones(n)])
    rhs = np.zeros(n + 1)
    rhs[-1] = 1.0
    pi, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    state_costs = costs[np.asarray(policy.actions, dtype=np.int64)]
    return float(pi @ state_costs)


def all_policies(ctmdp: RepairCTMDP):
    ranges = [ctmdp.actions_of(state) for state in range(ctmdp.num_states)]
    for combo in itertools.product(*ranges):
        yield RepairPolicy("brute", tuple(combo))


class TestAgainstBruteForce:
    @pytest.mark.parametrize("objective", ["unavailability", "cost_rate"])
    @pytest.mark.parametrize("crew_limit", [1, 2])
    def test_policy_iteration_finds_the_exact_optimum(self, objective, crew_limit):
        ctmdp = RepairCTMDP(make_mini_model(), crew_limit=crew_limit)
        costs = (
            ctmdp.down[ctmdp.action_state].astype(float)
            if objective == "unavailability"
            else ctmdp.action_cost
        )
        reference = min(
            dense_gain(ctmdp, policy, costs) for policy in all_policies(ctmdp)
        )
        result = policy_iteration(ctmdp, objective=objective)
        assert result.converged
        assert result.gain == pytest.approx(reference, abs=1e-9)
        # The gain history never increases (monotone improvement).
        assert all(a >= b - 1e-12 for a, b in zip(result.history, result.history[1:]))


class TestEvaluation:
    def test_gains_match_direct_steady_state(self):
        """Gain/bias solves agree with the stationary-distribution measure."""
        ctmdp = RepairCTMDP(build_line(LINE2))
        engine = SolverEngine()
        for label, policy in default_candidates(ctmdp).items():
            evaluation = evaluate_policy(ctmdp, policy, engine=engine)
            session = AnalysisSession()
            index = session.add(
                MeasureRequest(
                    chain=ctmdp.induced_chain(policy),
                    times=(),
                    kind=MeasureKind.STEADY_STATE,
                    target="operational",
                )
            )
            reference = 1.0 - float(session.execute()[index].squeezed[0])
            assert evaluation.gains["unavailability"] == pytest.approx(
                reference, abs=1e-9
            ), label

    def test_evaluation_is_cached_across_repeats(self):
        ctmdp = RepairCTMDP(make_mini_model())
        engine = SolverEngine()
        policy = next(iter(default_candidates(ctmdp).values()))
        stats = OptimizerStats()
        evaluate_policy(ctmdp, policy, engine=engine, stats=stats)
        first_factorizations = engine.stats.factorizations
        evaluate_policy(ctmdp, policy, engine=engine, stats=stats)
        assert engine.stats.factorizations == first_factorizations
        assert stats.cache_hits >= 1
        assert stats.policy_evaluations == 2


class TestBeatsFixedStrategies:
    def test_optimum_is_at_least_as_good_as_every_baseline(self):
        ctmdp = RepairCTMDP(build_line(LINE2), crew_limit=1)
        engine = SolverEngine()
        stats = OptimizerStats()
        candidates = default_candidates(ctmdp)
        gains = {
            label: evaluate_policy(
                ctmdp, policy, engine=engine, stats=stats
            ).gains["unavailability"]
            for label, policy in candidates.items()
        }
        result = policy_iteration(
            ctmdp,
            objective="unavailability",
            initial=min(candidates.values(), key=lambda p: gains[p.name]),
            engine=engine,
            stats=stats,
        )
        assert result.converged
        for label, gain in gains.items():
            assert result.gain <= gain + 1e-9, label
        assert stats.policy_improvements >= 1
        assert result.availability == pytest.approx(1.0 - result.gain)

    def test_unknown_objective_raises(self):
        ctmdp = RepairCTMDP(make_mini_model())
        with pytest.raises(OptimizeError, match="unknown long-run objective"):
            policy_iteration(ctmdp, objective="latency")
