"""Tests for the repair CTMDP (`repro.optimize.ctmdp`).

The load-bearing property is *faithfulness*: the paper's fixed strategies,
mapped onto set-based policies, must reproduce the measures of the original
queue-ordered state spaces to solver precision.  The rest covers the action
space, the flat-array bookkeeping and the guard rails.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import AnalysisSession, MeasureKind, MeasureRequest
from repro.arcade.repair import RepairStrategy
from repro.casestudy.experiments import (
    line_service_interval_lower,
    line_state_space,
)
from repro.casestudy.facility import (
    DISASTER_2,
    LINE2,
    PAPER_STRATEGIES,
    StrategyConfiguration,
    build_line,
)
from repro.measures import steady_state_availability, survivability_request
from repro.optimize import OptimizeError, RepairCTMDP, RepairPolicy
from tests.helpers import make_mini_model


@pytest.fixture(scope="module")
def line2_ctmdp() -> RepairCTMDP:
    return RepairCTMDP(build_line(LINE2))


class TestConstruction:
    def test_states_are_failed_set_bitmasks(self):
        ctmdp = RepairCTMDP(make_mini_model())
        assert ctmdp.num_states == 8
        assert ctmdp.state_of(()) == 0
        assert ctmdp.state_of(("alpha",)) == 1
        assert ctmdp.state_of(("alpha", "gamma")) == 5
        assert ctmdp.disaster_state("everything") == 7
        assert ctmdp.failed_of_state[5] == ("alpha", "gamma")

    def test_action_space_sizes(self):
        # One unit over three components, unlimited crews: each state admits
        # every non-empty subset of its failed components (or idle if none).
        ctmdp = RepairCTMDP(make_mini_model())
        for mask in range(8):
            failed = bin(mask).count("1")
            expected = max(1, 2**failed - 1)
            assert len(ctmdp.actions_of(mask)) == expected
        # crew_limit=1: one served component per unit.
        capped = RepairCTMDP(make_mini_model(), crew_limit=1)
        for mask in range(8):
            failed = bin(mask).count("1")
            assert len(capped.actions_of(mask)) == max(1, failed)

    def test_action_costs_match_model_state_cost_rate(self):
        ctmdp = RepairCTMDP(make_mini_model(), crew_limit=1)
        model = ctmdp.model
        for mask in range(ctmdp.num_states):
            for flat in ctmdp.actions_of(mask):
                busy = {
                    unit.name: len(subset)
                    for unit, subset in zip(
                        model.repair_units, ctmdp.action_served[flat]
                    )
                }
                expected = model.state_cost_rate(ctmdp.failed_of_state[mask], busy)
                assert ctmdp.action_cost[flat] == pytest.approx(expected, abs=1e-12)

    def test_down_and_service_levels_follow_the_trees(self, line2_ctmdp):
        ctmdp = line2_ctmdp
        model = ctmdp.model
        for mask in (0, 1, ctmdp.num_states - 1):
            failed = ctmdp.failed_of_state[mask]
            assert ctmdp.down[mask] == model.is_down(failed)
            assert ctmdp.service_fractions[mask] == model.service_level(failed)
        threshold = line_service_interval_lower(LINE2, 0)
        in_x1 = ctmdp.states_with_service_at_least(threshold)
        assert in_x1[0]  # all-up certainly reaches X1
        assert not in_x1[ctmdp.disaster_state(DISASTER_2)]

    def test_guard_rails(self):
        with pytest.raises(OptimizeError, match="crew_limit"):
            RepairCTMDP(make_mini_model(), crew_limit=0)
        with pytest.raises(OptimizeError, match="unknown component"):
            RepairCTMDP(make_mini_model()).state_of(("nope",))

    def test_validate_policy_rejects_bad_shapes_and_actions(self):
        ctmdp = RepairCTMDP(make_mini_model())
        with pytest.raises(OptimizeError, match="8 states"):
            ctmdp.validate_policy(RepairPolicy("short", (0,)))
        # Action 0 belongs to state 0 only.
        bad = RepairPolicy("bad", tuple(0 for _ in range(8)))
        with pytest.raises(OptimizeError, match="out-of-state"):
            ctmdp.validate_policy(bad)


class TestStrategyPolicies:
    def test_fcfs_has_no_set_based_policy(self, line2_ctmdp):
        with pytest.raises(OptimizeError, match="FCFS"):
            line2_ctmdp.strategy_policy(
                StrategyConfiguration(RepairStrategy.FCFS, 1)
            )

    def test_capped_ctmdp_rejects_strategies_over_budget(self):
        ctmdp = RepairCTMDP(build_line(LINE2), crew_limit=1)
        with pytest.raises(OptimizeError, match="caps units"):
            ctmdp.strategy_policy(
                StrategyConfiguration(RepairStrategy.DEDICATED, 1)
            )

    def test_dedicated_serves_every_failed_component(self, line2_ctmdp):
        ctmdp = line2_ctmdp
        policy = ctmdp.strategy_policy(
            StrategyConfiguration(RepairStrategy.DEDICATED, 1)
        )
        worst = ctmdp.num_states - 1
        served = ctmdp.action_served[policy.actions[worst]]
        total = sum(len(subset) for subset in served)
        assert total == len(ctmdp.component_names)

    def test_steady_state_availability_matches_queue_chains(self, line2_ctmdp):
        """All five paper strategies: set-based policy == queue-ordered chain."""
        ctmdp = line2_ctmdp
        for configuration in PAPER_STRATEGIES:
            policy = ctmdp.strategy_policy(configuration)
            chain = ctmdp.induced_chain(policy)
            session = AnalysisSession()
            index = session.add(
                MeasureRequest(
                    chain=chain,
                    times=(),
                    kind=MeasureKind.STEADY_STATE,
                    target="operational",
                )
            )
            from_ctmdp = float(session.execute()[index].squeezed[0])
            reference = steady_state_availability(
                line_state_space(LINE2, configuration)
            )
            assert from_ctmdp == pytest.approx(reference, abs=1e-9), (
                configuration.label
            )

    def test_survivability_matches_queue_chain(self, line2_ctmdp):
        """Reachability curves agree between set-based and queue spaces."""
        ctmdp = line2_ctmdp
        configuration = next(
            c for c in PAPER_STRATEGIES if c.label == "FRF-2"
        )
        times = np.linspace(0.0, 40.0, 9)
        threshold = line_service_interval_lower(LINE2, 0)
        session = AnalysisSession()
        reference_index = session.add(
            survivability_request(
                line_state_space(LINE2, configuration), DISASTER_2, threshold, times
            )
        )
        policy = ctmdp.strategy_policy(configuration)
        initial = np.zeros(ctmdp.num_states)
        initial[ctmdp.disaster_state(DISASTER_2)] = 1.0
        ctmdp_index = session.add(
            MeasureRequest(
                chain=ctmdp.induced_chain(policy),
                times=times,
                kind=MeasureKind.REACHABILITY,
                target=ctmdp.states_with_service_at_least(threshold),
                initial_distributions=initial,
            )
        )
        results = session.execute()
        np.testing.assert_allclose(
            results[ctmdp_index].squeezed, results[reference_index].squeezed, atol=1e-9
        )


class TestInducedChains:
    def test_chain_memoized_by_action_tuple(self, line2_ctmdp):
        ctmdp = line2_ctmdp
        policy = ctmdp.strategy_policy(PAPER_STRATEGIES[0])
        assert ctmdp.chain_is_cached(policy)  # built by the class-level tests
        renamed = RepairPolicy("other-name", policy.actions)
        assert ctmdp.induced_chain(policy) is ctmdp.induced_chain(renamed)

    def test_generator_rows_match_triplets(self):
        ctmdp = RepairCTMDP(make_mini_model())
        policy = RepairPolicy(
            "first", tuple(int(i) for i in ctmdp.action_offsets[:-1])
        )
        chain = ctmdp.induced_chain(policy)
        q = chain.generator_matrix().toarray()
        # Off-diagonal mass per row = failure rates + chosen repair rates.
        for mask in range(ctmdp.num_states):
            expected = float(
                ctmdp.fail_rate[ctmdp.fail_src == mask].sum()
            )
            flat = policy.actions[mask]
            expected += float(
                ctmdp.repair_rate[ctmdp.repair_action == flat].sum()
            )
            row = q[mask].copy()
            row[mask] = 0.0
            assert row.sum() == pytest.approx(expected, abs=1e-12)

    def test_q_values_score_every_action(self):
        ctmdp = RepairCTMDP(make_mini_model())
        rng = np.random.default_rng(7)
        values = rng.standard_normal(ctmdp.num_states)
        q = ctmdp.action_q_values(values)
        assert q.shape == (ctmdp.total_actions,)
        # Spot-check one action against its generator row.
        flat = ctmdp.action_offsets[7]  # first action of the all-failed state
        state = int(ctmdp.action_state[flat])
        mask = ctmdp.repair_action == flat
        expected = float(
            (ctmdp.repair_rate[mask] * (values[ctmdp.repair_target[mask]] - values[state])).sum()
        )
        fail = ctmdp.fail_src == state
        expected += float(
            (ctmdp.fail_rate[fail] * (values[ctmdp.fail_tgt[fail]] - values[state])).sum()
        )
        assert q[flat] == pytest.approx(expected, abs=1e-12)
