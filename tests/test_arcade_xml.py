"""Tests for the Arcade XML format, including property-based round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arcade import (
    ArcadeModel,
    BasicComponent,
    BasicEvent,
    FaultTree,
    KOfN,
    Or,
    RepairUnit,
    SpareManagementUnit,
    model_from_xml,
    model_to_xml,
    read_model,
    write_model,
)
from repro.arcade.model import Disaster
from repro.arcade.xml_io import ArcadeXMLError
from repro.casestudy import build_line2
from helpers import make_mini_model, make_spare_model


def assert_models_equal(left: ArcadeModel, right: ArcadeModel) -> None:
    assert left.name == right.name
    assert left.components == right.components
    assert left.repair_units == right.repair_units
    assert left.spare_units == right.spare_units
    assert left.disasters == right.disasters
    assert left.cost_model == right.cost_model
    if left.fault_tree is None:
        assert right.fault_tree is None
    else:
        assert str(left.fault_tree) == str(right.fault_tree)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "model",
        [make_mini_model(), make_mini_model("dedicated"), make_spare_model(), build_line2("frf", 2)],
        ids=["mini-frf", "mini-ded", "spares", "line2"],
    )
    def test_round_trip(self, model):
        restored = model_from_xml(model_to_xml(model))
        assert_models_equal(model, restored)

    def test_file_round_trip(self, tmp_path, mini_model):
        path = tmp_path / "model.xml"
        write_model(mini_model, path)
        assert_models_equal(mini_model, read_model(path))

    def test_round_tripped_model_produces_identical_state_space(self, mini_model):
        from repro.arcade import build_state_space

        original = build_state_space(mini_model)
        restored = build_state_space(model_from_xml(model_to_xml(mini_model)))
        assert original.num_states == restored.num_states
        assert original.num_transitions == restored.num_transitions


class TestErrors:
    def test_not_xml(self):
        with pytest.raises(ArcadeXMLError):
            model_from_xml("this is not xml")

    def test_wrong_root(self):
        with pytest.raises(ArcadeXMLError):
            model_from_xml("<nonsense/>")

    def test_missing_attribute(self):
        text = '<arcade name="x"><components><component name="a" mttf="1"/></components></arcade>'
        with pytest.raises(ArcadeXMLError):
            model_from_xml(text)

    def test_unknown_fault_tree_gate(self):
        text = (
            '<arcade name="x"><components>'
            '<component name="a" mttf="1" mttr="1"/></components>'
            "<fault-tree><xor/></fault-tree></arcade>"
        )
        with pytest.raises(ArcadeXMLError):
            model_from_xml(text)

    def test_multiple_fault_tree_roots_rejected(self):
        text = (
            '<arcade name="x"><components>'
            '<component name="a" mttf="1" mttr="1"/></components>'
            '<fault-tree><event component="a"/><event component="a"/></fault-tree></arcade>'
        )
        with pytest.raises(ArcadeXMLError):
            model_from_xml(text)


# ---------------------------------------------------------------------------
# property-based round trip over randomly generated models
# ---------------------------------------------------------------------------
_strategies = st.sampled_from(["dedicated", "fcfs", "fastest_repair_first", "fastest_failure_first", "priority"])


@st.composite
def random_models(draw) -> ArcadeModel:
    count = draw(st.integers(min_value=2, max_value=5))
    components = tuple(
        BasicComponent(
            name=f"c{i}",
            mttf=float(draw(st.integers(1, 10_000))),
            mttr=float(draw(st.integers(1, 500))),
            priority=draw(st.integers(0, 5)),
            dormancy_factor=draw(st.sampled_from([0.0, 0.5, 1.0])),
        )
        for i in range(count)
    )
    covered = tuple(component.name for component in components[: draw(st.integers(1, count))])
    unit = RepairUnit(
        "ru",
        draw(_strategies),
        covered,
        crews=draw(st.integers(1, 3)),
        preemptive=draw(st.booleans()),
    )
    spare_units = ()
    if count >= 3 and draw(st.booleans()):
        spare_units = (SpareManagementUnit("sp", (components[0].name, components[1].name), required=1),)
    fault_tree = FaultTree(
        Or(
            KOfN(1, [BasicEvent(component.name) for component in components[:2]]),
            *(BasicEvent(component.name) for component in components[2:]),
        )
    )
    disasters = (Disaster("worst", tuple(component.name for component in components)),)
    return ArcadeModel(
        name="random",
        components=components,
        repair_units=(unit,),
        spare_units=spare_units,
        fault_tree=fault_tree,
        disasters=disasters,
    )


@given(model=random_models())
@settings(max_examples=50, deadline=None)
def test_xml_round_trip_property(model):
    restored = model_from_xml(model_to_xml(model))
    assert_models_equal(model, restored)
