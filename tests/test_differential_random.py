"""Randomized differential tests: session numerics vs. independent references.

The paper's figures exercise only a handful of chain shapes; as the warm
path grows (batched planning, cached factorizations, lumping quotients),
this harness cross-checks every long-run and time-bounded pipeline on a
population of *generated* CTMCs:

* ``P=?[ safe U<=t target ]`` (session ``REACHABILITY``) against a dense
  matrix-exponential of the absorbed generator (``scipy.linalg.expm``) —
  a completely independent numerical route;
* ``S=?`` and ``R=?[S]`` (session ``STEADY_STATE``) against a dense
  reference built from scratch in this module: boolean-closure BSCC
  detection, least-squares stationary vectors and dense absorption solves
  (no shared code with :mod:`repro.ctmc.steady_state`);
* ``R=?[F target]`` (session ``REACHABILITY_REWARD``) against the retained
  per-call :func:`repro.ctmc.linsolve.reachability_reward_reference`;
* ``P=?[ safe U[a,t] target ]`` (session ``INTERVAL_REACHABILITY``) against
  a dense two-phase expm reference (forward through the safe-restricted
  generator to ``a``, backward through the absorbed generator over
  ``t - a``) — this exercises *both* quotients of the lumped interval
  bundle (target-absorbed backward, seed-vector forward);
* ``P=?[ safe U target ]`` (session ``UNBOUNDED_REACHABILITY``), lumped
  against unlumped, guarding the safe+target-seeded long-run quotient.

Each seeded chain (5–40 states, random density/rates, random target,
safe-set and reward structures, including absorbing states and reducible
chains) is checked with ``lump=False`` and ``lump=True``; agreement is
required to 1e-10 across at least 50 chains.  Since PR 10 the ``lumped``
axis genuinely quotients the long-run and interval groups too (not just
regular bounded reachability), so every comparison below doubles as an
exactness proof for the expanded lumping coverage.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import expm

from repro.analysis import AnalysisSession, MeasureKind
from repro.ctmc import CTMC
from repro.ctmc.linsolve import reachability_reward_reference

NUM_CHAINS = 60
TOLERANCE = 1e-10

#: Accuracy contract of the float32 sweep lane (see repro.ctmc.engines).
F32_TOLERANCE = 1e-6


# ---------------------------------------------------------------------------
# seeded model generator
# ---------------------------------------------------------------------------
def random_ctmc(seed: int) -> tuple[CTMC, dict]:
    """A random chain plus random target/safe/reward observables.

    Densities span sparse-reducible (absorbing BSCCs appear naturally once
    rows go empty) to near-complete irreducible chains; rates span two
    orders of magnitude so uniformization constants genuinely differ.
    """
    rng = np.random.default_rng(seed)
    num_states = int(rng.integers(5, 41))
    density = float(rng.uniform(0.1, 0.6))
    rates = rng.uniform(0.1, 3.0, (num_states, num_states))
    rates *= rng.random((num_states, num_states)) < density
    np.fill_diagonal(rates, 0.0)
    if rng.random() < 0.3:
        # Force a few absorbing states: empty rows create non-trivial BSCC
        # structure and infinite reachability rewards.
        absorbing = rng.choice(num_states, size=max(1, num_states // 8), replace=False)
        rates[absorbing, :] = 0.0
    if not rates.any():
        rates[0, num_states - 1] = 1.0  # pragma: no cover - degenerate draw
    scale = float(rng.uniform(0.3, 4.0))
    initial = rng.random(num_states) + 1e-3

    target = rng.random(num_states) < rng.uniform(0.1, 0.4)
    target[int(rng.integers(num_states))] = True
    safe = rng.random(num_states) < rng.uniform(0.5, 1.0)
    rewards = rng.uniform(0.0, 3.0, num_states)
    times = np.linspace(0.0, float(rng.uniform(0.5, 4.0)), 5)

    chain = CTMC(rates * scale, initial / initial.sum())
    return chain, {
        "target": target,
        "safe": safe,
        "rewards": rewards,
        "times": times,
    }


# ---------------------------------------------------------------------------
# dense reference implementations (independent algorithm stack)
# ---------------------------------------------------------------------------
def reference_bounded_reachability(
    chain: CTMC, target: np.ndarray, safe: np.ndarray, times: np.ndarray
) -> np.ndarray:
    """``P[ safe U<=t target ]`` via a dense expm of the absorbed generator."""
    generator = chain.generator_matrix().toarray()
    absorbed = target | ~(safe | target)
    generator[absorbed, :] = 0.0
    initial = chain.initial_distribution
    indicator = target.astype(float)
    return np.array(
        [float(initial @ expm(generator * t) @ indicator) for t in times]
    )


def reference_interval_reachability(
    chain: CTMC,
    target: np.ndarray,
    safe: np.ndarray,
    lower: float,
    times: np.ndarray,
) -> np.ndarray:
    """``P[ safe U[a,t] target ]`` via two dense matrix exponentials.

    Phase 1 evolves the initial distribution through the safe-restricted
    generator to time ``a`` (mass that left the safe set strictly before
    ``a`` has failed the until and is zeroed); phase 2 weighs the surviving
    distribution against the bounded-reachability values of the absorbed
    generator over the residual horizon ``t - a``.
    """
    generator = chain.generator_matrix().toarray()
    restricted = generator.copy()
    restricted[~safe, :] = 0.0
    distribution = chain.initial_distribution @ expm(restricted * lower)
    distribution = np.where(safe, distribution, 0.0)
    absorbed = generator.copy()
    absorbed[target | ~(safe | target), :] = 0.0
    indicator = target.astype(float)
    return np.array(
        [
            float(distribution @ expm(absorbed * max(float(t) - lower, 0.0)) @ indicator)
            for t in times
        ]
    )


def _boolean_closure(adjacency: np.ndarray) -> np.ndarray:
    """Reflexive-transitive closure by repeated boolean squaring."""
    closure = adjacency | np.eye(adjacency.shape[0], dtype=bool)
    for _ in range(int(np.ceil(np.log2(max(adjacency.shape[0], 2)))) + 1):
        closure = closure | ((closure.astype(np.int64) @ closure.astype(np.int64)) > 0)
    return closure


def _reference_bsccs(rates: np.ndarray) -> list[np.ndarray]:
    """Bottom SCCs from the reachability closure (no graph library)."""
    closure = _boolean_closure(rates > 0.0)
    mutual = closure & closure.T
    component_of: dict[bytes, list[int]] = {}
    for state in range(rates.shape[0]):
        component_of.setdefault(mutual[state].tobytes(), []).append(state)
    bsccs = []
    for members in component_of.values():
        inside = np.zeros(rates.shape[0], dtype=bool)
        inside[members] = True
        if not np.any(closure[members][:, ~inside]):
            bsccs.append(np.array(members))
    return bsccs


def _reference_stationary(generator: np.ndarray) -> np.ndarray:
    """Stationary vector of an irreducible generator by least squares."""
    size = generator.shape[0]
    if size == 1:
        return np.ones(1)
    system = np.vstack([generator.T, np.ones((1, size))])
    rhs = np.zeros(size + 1)
    rhs[-1] = 1.0
    solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    return solution


def reference_longrun_expectation(chain: CTMC, observable: np.ndarray) -> float:
    """Long-run expectation of ``observable`` from the chain's initial
    distribution, computed with dense linear algebra only."""
    rates = chain.rate_matrix.toarray()
    num_states = chain.num_states
    initial = chain.initial_distribution
    bsccs = _reference_bsccs(rates)

    in_bscc = np.zeros(num_states, dtype=bool)
    for members in bsccs:
        in_bscc[members] = True
    transient = np.flatnonzero(~in_bscc)

    exit_rates = rates.sum(axis=1)
    weights = np.array([initial[members].sum() for members in bsccs])
    if transient.size:
        # Embedded jump chain restricted to the transient states; one dense
        # solve yields the absorption probabilities into every BSCC.
        embedded = np.divide(
            rates,
            exit_rates[:, None],
            out=np.zeros_like(rates),
            where=exit_rates[:, None] > 0,
        )
        system = np.eye(transient.size) - embedded[np.ix_(transient, transient)]
        one_step = np.column_stack(
            [embedded[np.ix_(transient, members)].sum(axis=1) for members in bsccs]
        )
        absorption = np.linalg.solve(system, one_step)
        weights = weights + initial[transient] @ absorption

    value = 0.0
    for members, weight in zip(bsccs, weights):
        if weight <= 0.0:
            continue
        sub = rates[np.ix_(members, members)]
        local_generator = sub - np.diag(sub.sum(axis=1))
        stationary = _reference_stationary(local_generator)
        value += weight * float(stationary @ observable[members])
    return value


# ---------------------------------------------------------------------------
# the differential harness
# ---------------------------------------------------------------------------
def _session_values(
    chain: CTMC,
    spec: dict,
    lump: bool,
    engine: str | None = None,
    dtype: str | None = None,
) -> dict[str, np.ndarray]:
    """All four measures of one chain through a single batched session."""
    session = AnalysisSession(lump=lump, engine=engine, dtype=dtype)
    indices = {
        "bounded": session.request(
            chain,
            spec["times"],
            kind=MeasureKind.REACHABILITY,
            target=spec["target"],
            safe=spec["safe"],
        ),
        "steady_probability": session.request(
            chain, (), kind=MeasureKind.STEADY_STATE, target=spec["target"]
        ),
        "steady_reward": session.request(
            chain, (), kind=MeasureKind.STEADY_STATE, rewards=spec["rewards"]
        ),
        "reach_reward": session.request(
            chain,
            (),
            kind=MeasureKind.REACHABILITY_REWARD,
            target=spec["target"],
            rewards=spec["rewards"],
        ),
    }
    results = session.execute()
    return {name: results[index].squeezed for name, index in indices.items()}


def _assert_close(label: str, seed: int, actual, expected) -> None:
    actual = np.asarray(actual, dtype=float)
    expected = np.asarray(expected, dtype=float)
    both_infinite = ~np.isfinite(actual) & ~np.isfinite(expected)
    difference = np.abs(
        np.where(both_infinite, 0.0, actual) - np.where(both_infinite, 0.0, expected)
    )
    assert np.all(difference <= TOLERANCE), (
        f"seed {seed}: {label} differs from the reference by "
        f"{float(np.max(difference))!r} "
        f"(session {actual!r} vs reference {expected!r})"
    )


@pytest.mark.parametrize("lump", [False, True], ids=["unlumped", "lumped"])
@pytest.mark.parametrize("seed", range(NUM_CHAINS))
def test_session_agrees_with_references(seed: int, lump: bool) -> None:
    chain, spec = random_ctmc(seed)
    values = _session_values(chain, spec, lump)

    _assert_close(
        "P=?[U<=t]",
        seed,
        values["bounded"],
        reference_bounded_reachability(
            chain, spec["target"], spec["safe"], spec["times"]
        ),
    )
    _assert_close(
        "S=?",
        seed,
        values["steady_probability"][0],
        reference_longrun_expectation(chain, spec["target"].astype(float)),
    )
    _assert_close(
        "R=?[S]",
        seed,
        values["steady_reward"][0],
        reference_longrun_expectation(chain, spec["rewards"]),
    )
    _assert_close(
        "R=?[F]",
        seed,
        values["reach_reward"][0],
        reachability_reward_reference(chain, spec["rewards"], spec["target"]),
    )


@pytest.mark.parametrize("lump", [False, True], ids=["unlumped", "lumped"])
@pytest.mark.parametrize("seed", range(NUM_CHAINS))
def test_interval_until_agrees_with_reference(seed: int, lump: bool) -> None:
    """``P=?[safe U[a,t] target]``, lumped and unlumped, vs dense expm.

    The lumped lane runs the bundle on two quotients (target-absorbed
    backward chain, seed-vector forward chain) with lift/project glue; both
    lanes must match the independent reference to the harness tolerance.
    """
    chain, spec = random_ctmc(seed)
    lower = 0.1 + 0.4 * float(spec["times"][-1])
    times = lower + spec["times"]  # first grid point sits exactly at t = a
    session = AnalysisSession(lump=lump)
    index = session.request(
        chain,
        times,
        kind=MeasureKind.INTERVAL_REACHABILITY,
        target=spec["target"],
        safe=spec["safe"],
        lower=lower,
    )
    values = session.execute()[index].squeezed
    _assert_close(
        "P=?[U[a,t]]",
        seed,
        values,
        reference_interval_reachability(
            chain, spec["target"], spec["safe"], lower, times
        ),
    )


@pytest.mark.parametrize("seed", range(NUM_CHAINS))
def test_unbounded_reachability_lump_invariant(seed: int) -> None:
    """``P=?[safe U target]`` is unchanged by the long-run quotient.

    The long-run lumping seeds *both* the target and the safe indicator
    (the chain is not pre-absorbed on this path), so prob0/prob1 and the
    restricted embedded-DTMC solve commute with the quotient.
    """
    chain, spec = random_ctmc(seed)
    values: dict[bool, np.ndarray] = {}
    for lump in (False, True):
        session = AnalysisSession(lump=lump)
        index = session.request(
            chain,
            (),
            kind=MeasureKind.UNBOUNDED_REACHABILITY,
            target=spec["target"],
            safe=spec["safe"],
        )
        values[lump] = session.execute()[index].squeezed
    _assert_close("P=?[U]", seed, values[True], values[False])


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("seed", range(NUM_CHAINS))
def test_dtype_lanes_agree_with_legacy_path(seed: int, dtype: str) -> None:
    """The engine-selected lanes reproduce the legacy float64 CSR numerics.

    ``engine="auto"`` routes every chain through the pluggable backend layer
    (dense BLAS below the crossover, CSR above); the float64 lane must stay
    within the harness tolerance of the legacy path and the float32 lane
    within its documented 1e-6 contract.
    """
    chain, spec = random_ctmc(seed)
    legacy = _session_values(chain, spec, lump=False)
    values = _session_values(chain, spec, lump=False, engine="auto", dtype=dtype)
    tolerance = TOLERANCE if dtype == "float64" else F32_TOLERANCE
    for name, expected in legacy.items():
        actual = np.asarray(values[name], dtype=float)
        expected = np.asarray(expected, dtype=float)
        both_infinite = ~np.isfinite(actual) & ~np.isfinite(expected)
        difference = np.abs(
            np.where(both_infinite, 0.0, actual)
            - np.where(both_infinite, 0.0, expected)
        )
        assert np.all(difference <= tolerance), (
            f"seed {seed}: {name} ({dtype}) deviates from the legacy lane by "
            f"{float(np.max(difference))!r}"
        )


def test_generator_produces_the_advertised_population() -> None:
    """The harness spans the sizes and structures the docstring claims."""
    sizes, reducible = [], 0
    for seed in range(NUM_CHAINS):
        chain, _ = random_ctmc(seed)
        sizes.append(chain.num_states)
        if len(_reference_bsccs(chain.rate_matrix.toarray())) > 1 or np.any(
            ~np.asarray(chain.rate_matrix.sum(axis=1)).ravel().astype(bool)
        ):
            reducible += 1
    assert NUM_CHAINS >= 50
    assert min(sizes) >= 5 and max(sizes) <= 40
    assert len(set(sizes)) > 10  # genuinely varied sizes
    assert reducible >= 5  # absorbing/reducible structure is exercised
