"""Tests for I/O-IMCs: composition, hiding, maximal progress, CTMC conversion."""

import numpy as np
import pytest

from repro.ctmc import steady_state_distribution
from repro.iomc import (
    IOIMC,
    IOIMCError,
    Signature,
    apply_maximal_progress,
    compose,
    compose_many,
    hide,
    to_ctmc,
)


def component(name: str, fail_rate: float) -> IOIMC:
    """A failing component that announces its failure and waits for repair."""
    model = IOIMC(
        name=name,
        signature=Signature(inputs={f"repaired_{name}"}, outputs={f"failed_{name}"}),
    )
    model.add_state("up", description={name: "up"}, initial=True)
    model.add_state("announcing", description={name: "announcing"})
    model.add_state("down", description={name: "down"})
    model.add_markovian("up", fail_rate, "announcing")
    model.add_interactive("announcing", f"failed_{name}", "down")
    model.add_interactive("down", f"repaired_{name}", "up")
    return model


def repairer(name: str, repair_rate: float) -> IOIMC:
    """A single-component repair unit."""
    model = IOIMC(
        name=f"repair_{name}",
        signature=Signature(inputs={f"failed_{name}"}, outputs={f"repaired_{name}"}),
    )
    model.add_state("idle", initial=True)
    model.add_state("busy")
    model.add_state("announcing")
    model.add_interactive("idle", f"failed_{name}", "busy")
    model.add_markovian("busy", repair_rate, "announcing")
    model.add_interactive("announcing", f"repaired_{name}", "idle")
    return model


class TestSignature:
    def test_classification(self):
        signature = Signature(inputs={"a"}, outputs={"b"}, internals={"c"})
        assert signature.classify("a") == "input"
        assert signature.decorate("b") == "b!"
        assert signature.decorate("c") == "c;"
        with pytest.raises(IOIMCError):
            signature.classify("unknown")

    def test_overlapping_classes_rejected(self):
        with pytest.raises(IOIMCError):
            Signature(inputs={"a"}, outputs={"a"})


class TestBasicStructure:
    def test_undeclared_action_rejected(self):
        model = IOIMC("m", Signature(outputs={"go"}))
        with pytest.raises(IOIMCError):
            model.add_interactive("s", "stop", "t")

    def test_nonpositive_rate_rejected(self):
        model = IOIMC("m", Signature())
        with pytest.raises(IOIMCError):
            model.add_markovian("s", 0.0, "t")

    def test_input_default_self_loop(self):
        model = component("c", 0.1)
        assert model.successors("up", "repaired_c") == ["up"]

    def test_vanishing_detection(self):
        model = component("c", 0.1)
        assert model.is_vanishing("announcing")
        assert not model.is_vanishing("up")


class TestComposition:
    def test_component_with_repairer_is_birth_death(self):
        lam, mu = 0.1, 2.0
        composed = compose(component("c", lam), repairer("c", mu))
        closed = hide(composed)
        chain = to_ctmc(closed, label_fn=lambda d: ["up"] if d[0] == {"c": "up"} else ["down"])
        assert chain.num_states == 2
        distribution = steady_state_distribution(chain)
        assert distribution[chain.label_mask("up")].sum() == pytest.approx(mu / (lam + mu), abs=1e-10)

    def test_duplicate_outputs_rejected(self):
        with pytest.raises(IOIMCError):
            compose(component("c", 0.1), component("c", 0.2))

    def test_three_way_composition(self):
        parts = [component("a", 0.1), repairer("a", 1.0), component("b", 0.2)]
        composed = compose_many(parts)
        # "b" is never repaired: its failure output remains in the composed signature.
        assert "failed_b" in composed.signature.outputs
        assert "failed_a" in composed.signature.outputs
        assert "repaired_a" in composed.signature.outputs

    def test_maximal_progress_removes_rates_from_vanishing_states(self):
        composed = hide(compose(component("c", 0.5), repairer("c", 1.0)))
        reduced = apply_maximal_progress(composed)
        urgent = composed.signature.outputs | composed.signature.internals
        for transition in reduced.markovian_transitions:
            has_urgent = any(
                t.action in urgent
                for t in reduced.interactive_from(transition.source)
            )
            assert not has_urgent

    def test_hide_unknown_action_rejected(self):
        with pytest.raises(IOIMCError):
            hide(component("c", 0.1), ["not_an_output"])

    def test_hide_all_makes_outputs_internal(self):
        hidden = hide(component("c", 0.1))
        assert not hidden.signature.outputs
        assert "failed_c" in hidden.signature.internals


class TestConversion:
    def test_nondeterministic_internal_behaviour_rejected(self):
        model = IOIMC("nd", Signature(internals={"tau"}))
        model.add_state("s", initial=True)
        model.add_state("a")
        model.add_state("b")
        model.add_interactive("s", "tau", "a")
        model.add_interactive("s", "tau", "b")
        model.add_markovian("a", 1.0, "s")
        with pytest.raises(IOIMCError):
            to_ctmc(model)

    def test_internal_chains_are_collapsed(self):
        model = IOIMC("chain", Signature(internals={"tau"}))
        for state in ("s", "m1", "m2", "t"):
            model.add_state(state, initial=(state == "s"))
        model.add_markovian("s", 2.0, "m1")
        model.add_interactive("m1", "tau", "m2")
        model.add_interactive("m2", "tau", "t")
        model.add_markovian("t", 1.0, "s")
        chain = to_ctmc(model)
        assert chain.num_states == 2

    def test_divergent_internal_loop_rejected(self):
        model = IOIMC("loop", Signature(internals={"tau"}))
        model.add_state("s", initial=True)
        model.add_state("a")
        model.add_interactive("a", "tau", "a")
        model.add_markovian("s", 1.0, "a")
        with pytest.raises(IOIMCError):
            to_ctmc(model)
