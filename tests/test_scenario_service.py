"""Tests for the async scenario service (`repro.service`).

Covers the acceptance criteria of the service subsystem: concurrent
submissions from many client tasks coalesce into the asserted number of
uniformization sweeps (no more than one batched session), per-caller result
slices match single-request sessions to <= 1e-12, the artifact cache is
bounded and LRU-evicts with instrumented counters, repeat runs report zero
quotient/Fox-Glynn recomputation, and a poisoned request fails its own
future without wedging the dispatcher.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.analysis import AnalysisSession, MeasureKind, MeasureRequest, SessionStats
from repro.ctmc import CTMC
from repro.ctmc.ctmc import CTMCError
from repro.ctmc.foxglynn import fox_glynn
from repro.service import (
    ArtifactCache,
    QueueFull,
    ScenarioService,
    ScenarioTimeout,
    ServiceClosed,
    paper_registry,
)


def random_chain(num_states: int, seed: int) -> CTMC:
    rng = np.random.default_rng(seed)
    rates = rng.random((num_states, num_states)) * (
        rng.random((num_states, num_states)) < 0.35
    )
    rates[0, 1] = 0.5
    np.fill_diagonal(rates, 0.0)
    initial = rng.random(num_states)
    return CTMC(
        rates,
        initial / initial.sum(),
        labels={"target": [num_states - 1], "bad": [0]},
    )


def fig45_family_requests(points: int = 7) -> list[MeasureRequest]:
    """The six Fig. 4/5 curves (3 strategies x intervals X1/X2) as requests.

    Expanded from the registry spec so tests, benchmarks and the service
    all exercise the identical family definition.
    """
    return paper_registry().expand("fig4_5", points=points)


# ---------------------------------------------------------------------------
# coalescing across concurrent clients
# ---------------------------------------------------------------------------
class TestCoalescing:
    def test_fig45_clients_cost_no_more_sweeps_than_one_batched_session(self):
        """The tentpole acceptance gate, on the paper's Fig. 4/5 family."""
        num_clients = 3
        family = fig45_family_requests()

        # Baseline: ONE batched session of the unique family.
        baseline_stats = SessionStats()
        baseline = AnalysisSession(stats=baseline_stats)
        indices = [baseline.add(request) for request in family]
        baseline_results = baseline.execute()
        reference = [baseline_results[index].squeezed for index in indices]

        async def run() -> tuple[list, ScenarioService]:
            service = ScenarioService(
                artifacts=ArtifactCache(),
                coalesce_window=5.0,  # never elapses: the size cap flushes
                max_batch=num_clients * len(family),
            )
            async with service:
                async def client() -> list[np.ndarray]:
                    results = await service.submit_many(fig45_family_requests())
                    return [result.squeezed for result in results]

                curves = await asyncio.gather(*(client() for _ in range(num_clients)))
            return curves, service

        curves, service = asyncio.run(run())
        assert service.stats.flushes == 1
        assert service.stats.session.requests == num_clients * len(family)
        # N clients may not cost more sweeps than the single batched session
        assert service.stats.session.sweeps <= baseline_stats.sweeps
        assert service.stats.session.sweeps == baseline_stats.groups
        for client_curves in curves:
            for curve, expected in zip(client_curves, reference):
                np.testing.assert_allclose(curve, expected, atol=1e-12)

    def test_slices_match_single_request_sessions(self):
        chain_a = random_chain(9, seed=0)
        chain_b = random_chain(7, seed=1)
        grid = [0.0, 0.5, 2.0]
        rewards = np.arange(7.0)
        requests = [
            MeasureRequest(chain=chain_a, times=grid, kind=MeasureKind.REACHABILITY,
                           target="target"),
            MeasureRequest(chain=chain_a, times=grid, kind=MeasureKind.TRANSIENT),
            MeasureRequest(chain=chain_b, times=grid,
                           kind=MeasureKind.CUMULATIVE_REWARD, rewards=rewards),
            MeasureRequest(chain=chain_b, times=grid,
                           kind=MeasureKind.INSTANTANEOUS_REWARD, rewards=rewards),
        ]

        async def run():
            async with ScenarioService(
                artifacts=ArtifactCache(), coalesce_window=5.0, max_batch=len(requests)
            ) as service:
                return await asyncio.gather(
                    *(service.submit(request) for request in requests)
                )

        results = asyncio.run(run())
        for request, result in zip(requests, results):
            single = AnalysisSession()
            index = single.add(request)
            expected = single.execute()[index]
            np.testing.assert_allclose(
                result.values, expected.values, atol=1e-12
            )

    def test_submissions_after_a_flush_start_a_new_batch(self):
        chain = random_chain(6, seed=2)
        request = MeasureRequest(chain=chain, times=[1.0], kind=MeasureKind.TRANSIENT)

        async def run():
            async with ScenarioService(
                artifacts=ArtifactCache(), coalesce_window=0.0, max_batch=4
            ) as service:
                first = await service.submit(request)
                second = await service.submit(request)
                return first, second, service.stats.flushes

        first, second, flushes = asyncio.run(run())
        assert flushes == 2
        np.testing.assert_allclose(first.values, second.values, atol=0.0)


# ---------------------------------------------------------------------------
# artifact cache: bounding, eviction, repeat-run hits
# ---------------------------------------------------------------------------
class TestArtifactCache:
    def test_bounded_lru_eviction(self):
        cache = ArtifactCache(max_entries=2)
        cache.fox_glynn_window(1.0, 1e-10)
        cache.fox_glynn_window(2.0, 1e-10)
        cache.fox_glynn_window(1.0, 1e-10)  # refresh 1.0 -> 2.0 becomes LRU
        cache.fox_glynn_window(3.0, 1e-10)  # evicts 2.0
        assert len(cache) == 2
        stats = cache.stats().kind("foxglynn")
        assert stats.evictions == 1
        assert stats.hits == 1
        misses_before = cache.stats().kind("foxglynn").misses
        cache.fox_glynn_window(1.0, 1e-10)  # still cached: no new miss
        cache.fox_glynn_window(2.0, 1e-10)  # was evicted: one new miss
        assert cache.stats().kind("foxglynn").misses == misses_before + 1

    def test_rejects_degenerate_bound(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)

    def test_window_values_match_direct_fox_glynn(self):
        cache = ArtifactCache()
        window = cache.fox_glynn_window(7.5, 1e-12)
        direct = fox_glynn(7.5, 1e-12)
        assert window.left == direct.left and window.right == direct.right
        np.testing.assert_allclose(window.weights, direct.weights)

    def test_transformed_chain_hits_across_equal_content(self):
        chain = random_chain(8, seed=3)
        rebuilt = CTMC(
            chain.rate_matrix.copy(), chain.initial_distribution,
            labels={"target": [7]},
        )
        mask = np.zeros(8, dtype=bool)
        mask[7] = True
        cache = ArtifactCache()
        first = cache.transformed_chain(chain, mask)
        second = cache.transformed_chain(rebuilt, mask)  # same fingerprint
        assert first is second
        stats = cache.stats().kind("transformed")
        assert (stats.hits, stats.misses) == (1, 1)

    def test_repeat_portfolio_has_zero_quotient_and_window_misses(self):
        family = fig45_family_requests(points=5)
        cache = ArtifactCache()

        async def sweep() -> None:
            async with ScenarioService(
                artifacts=cache, lump=True,
                coalesce_window=5.0, max_batch=len(family),
            ) as service:
                await service.submit_many(fig45_family_requests(points=5))

        asyncio.run(sweep())
        warm_before = cache.stats()
        assert warm_before.kind("quotient").misses > 0
        assert warm_before.kind("foxglynn").misses > 0
        asyncio.run(sweep())
        deltas = cache.stats().misses_since(warm_before)
        assert deltas["quotient"] == 0
        assert deltas["foxglynn"] == 0
        assert deltas["transformed"] == 0
        assert deltas["operator"] == 0

    def test_quotient_signature_ignores_member_multiplicity_and_order(self):
        # A re-coalesced batch (e.g. two clients instead of one, or members
        # arriving in a different order) observes the same distinct vectors
        # and must hit the cached quotient, not recompute it.
        family = fig45_family_requests(points=5)
        cache = ArtifactCache()
        session = AnalysisSession(lump=True, artifacts=cache)
        for request in family:
            session.add(request)
        session.execute()
        snapshot = cache.stats()
        doubled = AnalysisSession(lump=True, artifacts=cache)
        for request in list(reversed(family)) + family:  # 2 "clients", reordered
            doubled.add(request)
        doubled.execute()
        assert cache.stats().misses_since(snapshot)["quotient"] == 0

    def test_plain_sessions_share_the_injected_cache(self):
        family = fig45_family_requests(points=5)
        cache = ArtifactCache()
        for _ in range(2):
            session = AnalysisSession(lump=True, artifacts=cache)
            indices = [session.add(request) for request in fig45_family_requests(points=5)]
            session.execute()
        assert cache.stats().kind("quotient").hits > 0
        # and the cached path returns the same values as the uncached one
        session = AnalysisSession(lump=True, artifacts=cache)
        cached_indices = [session.add(request) for request in family]
        cached = session.execute()
        plain_session = AnalysisSession(lump=True)
        plain_indices = [plain_session.add(request) for request in family]
        plain = plain_session.execute()
        for cached_index, plain_index in zip(cached_indices, plain_indices):
            np.testing.assert_allclose(
                cached[cached_index].values, plain[plain_index].values, atol=1e-12
            )


# ---------------------------------------------------------------------------
# failure isolation
# ---------------------------------------------------------------------------
class TestFailureIsolation:
    def test_invalid_request_fails_its_own_future_only(self):
        chain = random_chain(6, seed=4)
        good = MeasureRequest(chain=chain, times=[1.0], kind=MeasureKind.TRANSIENT)
        poisoned = MeasureRequest(
            chain=chain, times=[1.0], kind=MeasureKind.REACHABILITY  # no target
        )

        async def run():
            async with ScenarioService(
                artifacts=ArtifactCache(), coalesce_window=5.0, max_batch=3
            ) as service:
                futures = await asyncio.gather(
                    service.submit(good),
                    service.submit(poisoned),
                    service.submit(good),
                    return_exceptions=True,
                )
                # the dispatcher must still serve new submissions afterwards
                followup = await service.submit(good)
                return futures, followup, service.stats

        (first, error, third), followup, stats = asyncio.run(run())
        assert isinstance(error, CTMCError)
        np.testing.assert_allclose(first.values, third.values, atol=0.0)
        np.testing.assert_allclose(followup.values, first.values, atol=1e-12)
        assert stats.failed == 1
        assert stats.completed == 3

    def test_execution_error_fails_only_its_group(self):
        chain = random_chain(6, seed=5)
        good = MeasureRequest(chain=chain, times=[1.0], kind=MeasureKind.TRANSIENT)
        # epsilon outside (0, 1) passes request validation but blows up in
        # the Fox-Glynn window build of its own (separately-keyed) group.
        poisoned = MeasureRequest(
            chain=chain, times=[1.0], kind=MeasureKind.TRANSIENT, epsilon=1.5
        )

        async def run():
            async with ScenarioService(
                artifacts=ArtifactCache(), coalesce_window=5.0, max_batch=2
            ) as service:
                return await asyncio.gather(
                    service.submit(good),
                    service.submit(poisoned),
                    return_exceptions=True,
                )

        good_result, error = asyncio.run(run())
        assert isinstance(error, ValueError)
        single = AnalysisSession()
        index = single.add(good)
        np.testing.assert_allclose(
            good_result.values, single.execute()[index].values, atol=1e-12
        )

    def test_close_without_drain_fails_queued_futures(self):
        # Submissions still waiting out the coalescing window must not hang
        # when the service is torn down without draining.
        chain = random_chain(5, seed=12)
        request = MeasureRequest(chain=chain, times=[1.0], kind=MeasureKind.TRANSIENT)

        async def run():
            service = ScenarioService(
                artifacts=ArtifactCache(), coalesce_window=30.0, max_batch=99
            )
            async with service:
                submission = asyncio.ensure_future(service.submit(request))
                await asyncio.sleep(0.05)  # queued, window still open
                await service.close(drain=False)
                with pytest.raises(ServiceClosed):
                    await submission

        asyncio.run(run())

    def test_closed_service_rejects_submissions(self):
        chain = random_chain(5, seed=6)
        request = MeasureRequest(chain=chain, times=[1.0], kind=MeasureKind.TRANSIENT)

        async def run():
            service = ScenarioService(artifacts=ArtifactCache())
            async with service:
                await service.submit(request)
            with pytest.raises(ServiceClosed):
                await service.submit(request)

        asyncio.run(run())


# ---------------------------------------------------------------------------
# scenario registry
# ---------------------------------------------------------------------------
class TestScenarioRegistry:
    def test_paper_portfolio_names(self):
        registry = paper_registry()
        for name in ("fig3", "fig4_5", "fig6", "fig7", "fig8_9", "fig10", "fig11"):
            assert name in registry

    def test_fig45_spec_expands_to_the_figure_family(self):
        registry = paper_registry()
        requests = registry.expand("fig4_5", points=5)
        assert len(requests) == 6  # 3 strategies x intervals X1/X2
        tags = {request.tag for request in requests}
        assert all(tag[0] == "fig4_5" for tag in tags)
        assert {tag[3] for tag in tags} == {0, 1}
        assert all(request.kind is MeasureKind.REACHABILITY for request in requests)
        assert all(len(np.asarray(request.times)) == 5 for request in requests)

    def test_unknown_and_duplicate_names_are_rejected(self):
        registry = paper_registry()
        with pytest.raises(KeyError):
            registry.expand("no_such_scenario")
        with pytest.raises(ValueError):
            registry.register(registry.get("fig3"))
        registry.register(registry.get("fig3"), replace_existing=True)

    def test_submit_scenario_returns_tagged_pairs(self):
        async def run():
            async with ScenarioService(
                artifacts=ArtifactCache(), coalesce_window=0.02
            ) as service:
                return await service.submit_scenario("fig4_5", points=5)

        pairs = asyncio.run(run())
        assert len(pairs) == 6
        for request, result in pairs:
            assert result.request is request
            assert request.tag[0] == "fig4_5"
            assert result.squeezed.shape == (5,)


# ---------------------------------------------------------------------------
# chain fingerprints (the cache keys)
# ---------------------------------------------------------------------------
class TestChainFingerprints:
    def test_equal_content_equal_fingerprint(self):
        chain = random_chain(8, seed=7)
        rebuilt = CTMC(chain.rate_matrix.copy(), chain.initial_distribution)
        assert chain.fingerprint == rebuilt.fingerprint

    def test_labels_and_initials_do_not_change_the_fingerprint(self):
        chain = random_chain(8, seed=8)
        relabelled = chain.restrict_labels(extra=[0, 1])
        moved = chain.with_initial_distribution({3: 1.0})
        assert chain.fingerprint == relabelled.fingerprint
        assert chain.fingerprint == moved.fingerprint

    def test_different_rates_different_fingerprint(self):
        assert random_chain(8, seed=9).fingerprint != random_chain(8, seed=10).fingerprint


# ---------------------------------------------------------------------------
# backpressure and per-request deadlines (in-process dispatcher)
# ---------------------------------------------------------------------------
class TestBackpressureAndDeadlines:
    def _request(self, seed: int = 40) -> MeasureRequest:
        return MeasureRequest(
            chain=random_chain(6, seed=seed),
            times=[0.5, 1.0],
            kind=MeasureKind.REACHABILITY,
            target="target",
        )

    def test_queue_full_at_cap_without_poisoning_other_callers(self):
        async def run():
            service = ScenarioService(
                artifacts=ArtifactCache(), coalesce_window=0.5, max_pending=2
            )
            async with service:
                first = asyncio.ensure_future(service.submit(self._request(41)))
                second = asyncio.ensure_future(service.submit(self._request(42)))
                await asyncio.sleep(0.01)  # both are queued, the window is open
                with pytest.raises(QueueFull):
                    await service.submit(self._request(43))
                results = await asyncio.gather(first, second)
                # The rejection consumed nothing: a retry succeeds once the
                # queue drained.
                retry = await service.submit(self._request(43))
                return results, retry, service.stats

        results, retry, stats = asyncio.run(run())
        assert all(result.values.shape == (1, 2) for result in results)
        assert retry.values.shape == (1, 2)
        assert stats.rejected == 1
        assert stats.submissions == 3  # the rejected call never enqueued
        assert stats.completed == 3 and stats.failed == 0

    def test_timeout_cancels_only_its_own_future(self):
        async def run():
            service = ScenarioService(
                artifacts=ArtifactCache(), coalesce_window=0.2
            )
            async with service:
                doomed = service.submit(self._request(44), timeout=0.01)
                sibling = service.submit(self._request(45))
                timed_out, result = await asyncio.gather(
                    doomed, sibling, return_exceptions=True
                )
                return timed_out, result, service.stats

        timed_out, result, stats = asyncio.run(run())
        assert isinstance(timed_out, ScenarioTimeout)
        assert isinstance(timed_out, TimeoutError)  # idiomatic to catch either
        assert not isinstance(result, BaseException)
        assert result.values.shape == (1, 2)
        assert stats.timeouts == 1
        # The timed-out request was dropped before planning: exactly the
        # sibling's work was executed and completed.
        assert stats.session.requests == 1
        assert stats.completed == 1

    def test_default_timeout_applies_and_explicit_overrides(self):
        async def run():
            service = ScenarioService(
                artifacts=ArtifactCache(),
                coalesce_window=0.15,
                default_timeout=0.01,
            )
            async with service:
                with pytest.raises(ScenarioTimeout):
                    await service.submit(self._request(46))
                # A generous explicit timeout overrides the tight default.
                result = await service.submit(self._request(47), timeout=30.0)
                return result, service.stats

        result, stats = asyncio.run(run())
        assert result.values.shape == (1, 2)
        assert stats.timeouts == 1

    def test_submit_many_applies_per_request_deadlines(self):
        async def run():
            service = ScenarioService(
                artifacts=ArtifactCache(), coalesce_window=0.1
            )
            async with service:
                with pytest.raises(ScenarioTimeout):
                    await service.submit_many(
                        [self._request(48), self._request(49)], timeout=0.01
                    )
                # The service is not wedged afterwards.
                results = await service.submit_many(
                    [self._request(48), self._request(49)]
                )
                return results

        results = asyncio.run(run())
        assert len(results) == 2

    def test_submit_many_over_cap_cancels_the_partial_batch(self):
        """A rejected batch must not leave orphans computing in the background."""

        async def run():
            service = ScenarioService(
                artifacts=ArtifactCache(), coalesce_window=0.1, max_pending=2
            )
            async with service:
                with pytest.raises(QueueFull):
                    await service.submit_many(
                        [self._request(50), self._request(51), self._request(52)]
                    )
                await asyncio.sleep(0.3)  # any leaked work would flush here
                leaked = service.stats.session.requests
                results = await service.submit_many(
                    [self._request(50), self._request(51)]
                )
                return leaked, results

        leaked, results = asyncio.run(run())
        assert leaked == 0  # the partial batch was cancelled before planning
        assert len(results) == 2

    def test_invalid_backpressure_configuration_rejected(self):
        with pytest.raises(ValueError):
            ScenarioService(max_pending=0)
        with pytest.raises(ValueError):
            ScenarioService(default_timeout=-1.0)
