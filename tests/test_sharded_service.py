"""Tests for the sharded multi-process scenario service (`repro.service.shard`).

Covers the tentpole acceptance criteria: a 2-shard run of the full
``paper_registry()`` portfolio matches the single-process service to
<= 1e-12 with disjoint per-shard chain ownership, the shared-nothing stats
protocol aggregates both shards' counters, a killed worker fails exactly
its own in-flight scenarios while the remaining shards keep serving, and
the sharded front applies the same backpressure (``QueueFull``) and
per-request deadline (``ScenarioTimeout``) policies as the in-process
dispatcher.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.analysis import MeasureKind, MeasureRequest
from repro.ctmc import CTMC
from repro.service import (
    ArtifactCache,
    QueueFull,
    ScenarioService,
    ScenarioTimeout,
    ServiceClosed,
    ShardCrashed,
    ShardedScenarioService,
    paper_registry,
    shard_for_fingerprint,
)

NUM_SHARDS = 2

#: Coarse grid keeping the full-portfolio acceptance run fast; the values
#: compared are exact at any resolution.
PORTFOLIO_POINTS = 7


def random_chain(num_states: int, seed: int, rate_scale: float = 1.0) -> CTMC:
    rng = np.random.default_rng(seed)
    rates = rng.random((num_states, num_states)) * (
        rng.random((num_states, num_states)) < 0.4
    )
    np.fill_diagonal(rates, 0.0)
    rates[0, 1] = 0.5
    initial = rng.random(num_states)
    return CTMC(
        rates * rate_scale,
        initial / initial.sum(),
        labels={"target": [num_states - 1]},
    )


def chain_owned_by(shard: int, num_states: int = 6, rate_scale: float = 1.0) -> CTMC:
    """A small random chain whose fingerprint routes to ``shard``."""
    for seed in range(1000):
        chain = random_chain(num_states, seed=7000 + seed, rate_scale=rate_scale)
        if shard_for_fingerprint(chain.fingerprint, NUM_SHARDS) == shard:
            return chain
    raise AssertionError("no seed routed to the requested shard")  # pragma: no cover


def reachability_request(chain: CTMC, times=(0.5, 1.0, 2.0)) -> MeasureRequest:
    return MeasureRequest(
        chain=chain, times=times, kind=MeasureKind.REACHABILITY, target="target"
    )


@pytest.fixture(scope="module")
def portfolio() -> list[MeasureRequest]:
    """The full paper portfolio (state spaces come from the shared cache)."""
    registry = paper_registry()
    return [
        request
        for name in registry.names
        for request in registry.expand(name, points=PORTFOLIO_POINTS)
    ]


@pytest.fixture(scope="module")
def baseline(portfolio):
    """Single-process reference results for the whole portfolio."""

    async def run():
        service = ScenarioService(
            artifacts=ArtifactCache(), coalesce_window=0.05, max_batch=1024
        )
        async with service:
            return await service.submit_many(list(portfolio))

    return asyncio.run(run())


# ---------------------------------------------------------------------------
# the tentpole acceptance gate: 2 shards == 1 process, chains never duplicated
# ---------------------------------------------------------------------------
class TestShardedPortfolio:
    def test_two_shard_portfolio_matches_single_process(self, portfolio, baseline):
        # Heartbeats off: the exact worker-counter bookkeeping asserted
        # below only holds while no restart ever resets a worker, and this
        # test injects no faults.
        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS,
                coalesce_window=0.05,
                max_batch=1024,
                heartbeat_interval=None,
            ) as sharded:
                results = await sharded.submit_many(list(portfolio))
                snapshots = await sharded.shard_snapshots()
                return results, snapshots, sharded.stats

        results, snapshots, stats = asyncio.run(run())

        deviation = max(
            float(np.max(np.abs(result.values - reference.values)))
            for result, reference in zip(results, baseline)
        )
        assert deviation <= 1e-12
        for result, reference in zip(results, baseline):
            assert result.request is reference.request  # re-attached, not rebuilt
            np.testing.assert_array_equal(result.times, reference.times)

        # Both workers genuinely served traffic...
        assert stats.submissions == len(portfolio)
        assert stats.completed == len(portfolio)
        assert all(count > 0 for count in stats.routed.values())
        served = {snapshot.index: snapshot for snapshot in snapshots}
        assert sorted(served) == list(range(NUM_SHARDS))
        for snapshot in snapshots:
            assert snapshot.alive
            assert snapshot.service is not None
            assert snapshot.service.session.requests == stats.routed[snapshot.index]
        # ...and fingerprint routing gave each chain exactly one owner: the
        # artifact caches of the two shards cover disjoint chain sets.
        fingerprints = [snapshot.fingerprints for snapshot in snapshots]
        assert all(fingerprints)
        assert not (fingerprints[0] & fingerprints[1])

    def test_aggregated_metrics_cover_both_shards(self, portfolio, baseline):
        del baseline  # only ordering matters: module fixtures stay warm

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS,
                coalesce_window=0.05,
                max_batch=1024,
                heartbeat_interval=None,
            ) as sharded:
                await sharded.submit_many(list(portfolio))
                snapshots = await sharded.shard_snapshots()
                return await sharded.metrics_text(), snapshots

        text, snapshots = asyncio.run(run())
        lines = text.splitlines()
        total = sum(snapshot.service.session.requests for snapshot in snapshots)
        assert f"repro_service_requests_total {total}" in lines
        assert f"repro_front_submissions_total {len(portfolio)}" in lines
        for index in range(NUM_SHARDS):
            assert f'repro_shard_alive{{shard="{index}"}} 1' in lines
            assert any(
                line.startswith(f'repro_shard_routed_total{{shard="{index}"}}')
                for line in lines
            )


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------
class TestRouting:
    def test_routing_is_deterministic_and_identity_free(self):
        chain = random_chain(6, seed=3)
        rebuilt = random_chain(6, seed=3)
        assert chain is not rebuilt
        assert shard_for_fingerprint(
            chain.fingerprint, NUM_SHARDS
        ) == shard_for_fingerprint(rebuilt.fingerprint, NUM_SHARDS)
        for shards in (1, 2, 3, 7):
            assert 0 <= shard_for_fingerprint(chain.fingerprint, shards) < shards

    def test_single_shard_front_works(self):
        chain = random_chain(5, seed=11)

        async def run():
            async with ShardedScenarioService(1, coalesce_window=0.0) as sharded:
                return await sharded.submit(reachability_request(chain))

        result = asyncio.run(run())
        assert result.values.shape == (1, 3)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ShardedScenarioService(0)
        with pytest.raises(ValueError):
            ShardedScenarioService(2, max_pending=0)
        with pytest.raises(ValueError):
            ShardedScenarioService(2, default_timeout=0.0)
        with pytest.raises(ValueError):
            ShardedScenarioService(2, heartbeat_interval=-1.0)
        with pytest.raises(ValueError):
            ShardedScenarioService(2, heartbeat_timeout=0.0)
        with pytest.raises(ValueError):
            ShardedScenarioService(2, restart_limit=-1)
        with pytest.raises(ValueError):
            ShardedScenarioService(2, retry_limit=-1)
        with pytest.raises(ValueError):
            ShardedScenarioService(2, restart_window=0.0)
        with pytest.raises(ValueError):
            ShardedScenarioService(2, backoff_base=0.0)
        with pytest.raises(ValueError):
            ShardedScenarioService(2, shutdown_grace=0.0)
        with pytest.raises(ValueError):
            ShardedScenarioService(2, snapshot_timeout=0.0)
        with pytest.raises(TypeError):
            ShardedScenarioService(2, chaos="kill shard 0")

    def test_supervision_knobs_stored(self):
        service = ShardedScenarioService(
            2,
            heartbeat_interval=0.5,
            restart_limit=5,
            retry_limit=1,
            shutdown_grace=3.0,
            snapshot_timeout=7.0,
        )
        assert service.heartbeat_interval == 0.5
        # The derived default never drops below the 30s floor: a tight
        # timeout would kill healthy-but-GIL-starved workers.
        assert service.heartbeat_timeout == 30.0
        assert (
            ShardedScenarioService(2, heartbeat_interval=10.0).heartbeat_timeout
            == 50.0
        )
        assert service.restart_limit == 5
        assert service.retry_limit == 1
        assert service.shutdown_grace == 3.0
        assert service.snapshot_timeout == 7.0
        # 0 disables the heartbeat entirely.
        assert ShardedScenarioService(2, heartbeat_interval=0).heartbeat_interval is None


# ---------------------------------------------------------------------------
# failure isolation
# ---------------------------------------------------------------------------
class TestFailureIsolation:
    def test_poisoned_request_fails_only_its_own_future(self):
        healthy = chain_owned_by(0)
        poisoned = MeasureRequest(
            chain=chain_owned_by(1),
            times=(1.0,),
            kind=MeasureKind.REACHABILITY,
            target=None,  # validation failure inside the worker
        )

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS, coalesce_window=0.0
            ) as sharded:
                good, bad = await asyncio.gather(
                    sharded.submit(reachability_request(healthy)),
                    sharded.submit(poisoned),
                    return_exceptions=True,
                )
                return good, bad, sharded.stats

        good, bad, stats = asyncio.run(run())
        assert not isinstance(good, BaseException)
        assert isinstance(bad, Exception)
        assert "target" in str(bad)
        assert stats.completed == 1 and stats.failed == 1

    def test_killed_shard_fails_inflight_but_others_keep_serving(self):
        # Supervision off (restart_limit=0, retry_limit=0, failover=False)
        # restores the original fail-fast contract: a dead shard fails its
        # in-flight callers and rejects new traffic immediately.
        # ~seconds of queued work on the victim shard: the kill lands while
        # requests are provably in flight.
        victim_chains = [
            chain_owned_by(0, num_states=30, rate_scale=50.0) for _ in range(8)
        ]
        survivor_chain = chain_owned_by(1)
        times = np.linspace(0.0, 40.0, 31)

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS,
                coalesce_window=0.0,
                restart_limit=0,
                retry_limit=0,
                failover=False,
                heartbeat_interval=None,
            ) as sharded:
                inflight = [
                    asyncio.ensure_future(
                        sharded.submit(reachability_request(chain, times))
                    )
                    for chain in victim_chains
                ]
                await asyncio.sleep(0.05)
                sharded._shards[0].process.kill()
                outcomes = await asyncio.gather(*inflight, return_exceptions=True)

                # The surviving shard serves on, before and after new traffic.
                survivor = await sharded.submit(reachability_request(survivor_chain))
                # The dead shard rejects fast instead of hanging.
                with pytest.raises(ShardCrashed):
                    await sharded.submit(reachability_request(victim_chains[0]))
                snapshots = await sharded.shard_snapshots()
                return outcomes, survivor, snapshots

        outcomes, survivor, snapshots = asyncio.run(run())
        crashed = [o for o in outcomes if isinstance(o, ShardCrashed)]
        finished = [o for o in outcomes if not isinstance(o, BaseException)]
        assert len(crashed) + len(finished) == len(outcomes)
        assert crashed, "the kill must catch at least one request in flight"
        assert survivor.values.shape == (1, 3)
        alive = {snapshot.index: snapshot.alive for snapshot in snapshots}
        assert alive == {0: False, 1: True}

    def test_submit_after_close_raises(self):
        chain = random_chain(5, seed=23)

        async def run():
            sharded = ShardedScenarioService(1, coalesce_window=0.0)
            async with sharded:
                await sharded.submit(reachability_request(chain))
            with pytest.raises(ServiceClosed):
                await sharded.submit(reachability_request(chain))

        asyncio.run(run())


# ---------------------------------------------------------------------------
# backpressure and deadlines on the sharded front
# ---------------------------------------------------------------------------
class TestShardedBackpressure:
    def test_queue_full_rejects_without_poisoning_inflight(self):
        chains = [chain_owned_by(index % NUM_SHARDS) for index in range(2)]
        overflow_chain = chain_owned_by(0)

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS, coalesce_window=0.0, max_pending=2
            ) as sharded:
                inflight = [
                    asyncio.ensure_future(
                        sharded.submit(reachability_request(chain))
                    )
                    for chain in chains
                ]
                for _ in range(500):  # wait until both submissions are in flight
                    if sharded._inflight_count() >= 2:
                        break
                    await asyncio.sleep(0.01)
                with pytest.raises(QueueFull):
                    await sharded.submit(reachability_request(overflow_chain))
                results = await asyncio.gather(*inflight)
                # Capacity freed: the rejected request succeeds on retry.
                retry = await sharded.submit(reachability_request(overflow_chain))
                return results, retry, sharded.stats

        results, retry, stats = asyncio.run(run())
        assert len(results) == 2 and retry.values.shape == (1, 3)
        assert stats.rejected == 1
        assert stats.completed == 3

    def test_timeout_cancels_only_its_own_future(self):
        slow_chain = chain_owned_by(0, num_states=30, rate_scale=50.0)
        fast_chain = chain_owned_by(1)
        times = np.linspace(0.0, 40.0, 31)

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS, coalesce_window=0.0
            ) as sharded:
                slow = sharded.submit(
                    reachability_request(slow_chain, times), timeout=0.01
                )
                fast = sharded.submit(reachability_request(fast_chain))
                timed_out, result = await asyncio.gather(
                    slow, fast, return_exceptions=True
                )
                return timed_out, result, sharded.stats

        timed_out, result, stats = asyncio.run(run())
        assert isinstance(timed_out, ScenarioTimeout)
        assert not isinstance(result, BaseException)
        assert stats.timeouts == 1
        assert stats.completed >= 1
