"""Tests for Arcade basic components, component groups and cost models."""

import pytest

from repro.arcade import BasicComponent, CostModel
from repro.arcade.components import ArcadeModelError, ComponentGroup


class TestBasicComponent:
    def test_rates_from_mean_times(self):
        pump = BasicComponent("pump", mttf=500.0, mttr=1.0)
        assert pump.failure_rate == pytest.approx(1.0 / 500.0)
        assert pump.repair_rate == pytest.approx(1.0)
        assert pump.availability == pytest.approx(500.0 / 501.0)

    def test_from_rates(self):
        component = BasicComponent.from_rates("x", failure_rate=0.01, repair_rate=0.5)
        assert component.mttf == pytest.approx(100.0)
        assert component.mttr == pytest.approx(2.0)

    def test_dormancy(self):
        cold = BasicComponent("spare", 100.0, 5.0, dormancy_factor=0.0)
        warm = BasicComponent("spare2", 100.0, 5.0, dormancy_factor=0.5)
        assert cold.dormant_failure_rate == 0.0
        assert warm.dormant_failure_rate == pytest.approx(0.005)

    def test_default_class_is_name(self):
        assert BasicComponent("valve", 10.0, 1.0).component_class == "valve"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "", "mttf": 1.0, "mttr": 1.0},
            {"name": "x", "mttf": 0.0, "mttr": 1.0},
            {"name": "x", "mttf": 1.0, "mttr": -2.0},
            {"name": "x", "mttf": 1.0, "mttr": 1.0, "dormancy_factor": 2.0},
            {"name": "x", "mttf": 1.0, "mttr": 1.0, "failure_modes": ()},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ArcadeModelError):
            BasicComponent(**kwargs)

    def test_renamed_and_priority(self):
        template = BasicComponent("pump", 500.0, 1.0, component_class="pump", priority=3)
        copy = template.renamed("pump7").with_priority(1)
        assert copy.name == "pump7"
        assert copy.component_class == "pump"
        assert copy.priority == 1
        assert template.priority == 3  # original untouched

    def test_component_group(self):
        group = ComponentGroup(BasicComponent("pump", 500.0, 1.0, component_class="pump"), 3)
        members = group.members()
        assert [member.name for member in members] == ["pump1", "pump2", "pump3"]
        assert all(member.component_class == "pump" for member in members)
        with pytest.raises(ArcadeModelError):
            ComponentGroup(BasicComponent("pump", 500.0, 1.0), 0)


class TestCostModel:
    def test_paper_default(self):
        costs = CostModel.paper_default()
        assert costs.component_down_cost == 3.0
        assert costs.crew_idle_cost == 1.0
        assert costs.component_up_cost == 0.0
        assert costs.crew_busy_cost == 0.0

    def test_overrides(self):
        costs = CostModel(component_down_overrides={"pump": 10.0})
        assert costs.down_cost("pump") == 10.0
        assert costs.down_cost("other") == 3.0

    def test_crew_cost(self):
        costs = CostModel(crew_idle_cost=2.0, crew_busy_cost=0.5)
        assert costs.crew_cost(idle_crews=3, busy_crews=2) == pytest.approx(7.0)
        with pytest.raises(ValueError):
            costs.crew_cost(-1, 0)

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            CostModel(component_down_cost=-1.0)

    def test_zero_model(self):
        costs = CostModel.zero()
        assert costs.down_cost("anything") == 0.0
        assert costs.crew_cost(5, 5) == 0.0
