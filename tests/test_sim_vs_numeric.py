"""Monte-Carlo estimates must bracket the exact numbers at 99% confidence.

The simulator shares the model's scheduling logic but none of the CTMC
machinery, so these are genuine end-to-end cross-checks of the numerical
pipelines: the exact values come from the uniformization engine
(``P=?[U<=t]`` behind unreliability/survivability) and the cached
linear-solver engine (``S=?`` behind availability), and each fixed-seed
Monte-Carlo estimate must contain them inside its 99% confidence interval
(:meth:`repro.sim.ConfidenceInterval.contains`).

Unlike the loose agreement checks in ``test_simulator.py`` (3x tolerance
bands), these tests pin the estimator's own interval semantics: a bug that
biased either side — simulation scheduling or numerical solver — by more
than the sampling noise fails the bracket.
"""

from __future__ import annotations

import pytest

from repro.arcade import build_state_space
from repro.measures import steady_state_availability, survivability, unreliability
from repro.sim import (
    estimate_availability,
    estimate_survivability,
    estimate_unreliability,
)

from helpers import make_mini_model, make_spare_model

CONFIDENCE = 0.99


@pytest.fixture(scope="module")
def mini_model():
    return make_mini_model("fastest_repair_first")


@pytest.fixture(scope="module")
def mini_space(mini_model):
    return build_state_space(mini_model)


class TestAvailabilityBracketsSteadyState:
    def test_mini_model(self, mini_model, mini_space):
        exact = steady_state_availability(mini_space)
        estimate = estimate_availability(
            mini_model, horizon=20_000.0, runs=20, seed=0, confidence=CONFIDENCE
        )
        assert estimate.confidence == CONFIDENCE
        assert 0.0 < estimate.half_width < 0.05
        assert estimate.contains(exact), f"{estimate} does not bracket {exact}"

    def test_spare_model(self):
        model = make_spare_model(dormancy=0.5)
        exact = steady_state_availability(build_state_space(model))
        estimate = estimate_availability(
            model, horizon=20_000.0, runs=20, seed=1, confidence=CONFIDENCE
        )
        assert estimate.contains(exact), f"{estimate} does not bracket {exact}"


class TestUnreliabilityBracketsUniformization:
    @pytest.mark.parametrize("time", [10.0, 40.0])
    def test_mini_model(self, mini_model, time):
        exact = float(unreliability(mini_model, time))
        estimate = estimate_unreliability(
            mini_model, time, runs=2000, seed=2, confidence=CONFIDENCE
        )
        assert 0.0 < exact < 1.0  # a bracket over a degenerate value is vacuous
        assert estimate.contains(exact), f"{estimate} does not bracket {exact}"


class TestSurvivabilityBracketsUniformization:
    @pytest.mark.parametrize("time", [2.0, 6.0])
    def test_recovery_to_full_service(self, mini_model, mini_space, time):
        exact = float(survivability(mini_space, "everything", 1.0, time))
        estimate = estimate_survivability(
            mini_model, "everything", 1.0, time, runs=2000, seed=3, confidence=CONFIDENCE
        )
        assert 0.0 < exact < 1.0
        assert estimate.contains(exact), f"{estimate} does not bracket {exact}"
