"""Tests for the PRISM source exporter."""

from repro.csl import parse_formula
from repro.expr import Const, Var
from repro.modules import (
    Command,
    Module,
    ModulesFile,
    RewardStructureDefinition,
    VariableDeclaration,
    export_prism_model,
    export_prism_properties,
)


def small_system() -> ModulesFile:
    system = ModulesFile()
    component = Module("pump")
    component.add_variable(VariableDeclaration.boolean("pump_up", True))
    component.add_variable(VariableDeclaration.integer("mode", 0, 2, 1))
    component.add_command(
        Command.simple("fail", Var("pump_up"), 0.002, {"pump_up": Const(False)})
    )
    component.add_command(
        Command.simple("", ~Var("pump_up"), 1.0, {"pump_up": Const(True)})
    )
    system.add_module(component)
    system.add_label("down", ~Var("pump_up"))
    system.set_constant("N", 3)
    rewards = RewardStructureDefinition("cost")
    rewards.add_state_reward(~Var("pump_up"), 3.0)
    rewards.add_transition_reward("fail", Const(True), 10.0)
    system.add_rewards(rewards)
    return system


class TestModelExport:
    def test_contains_model_type_and_module(self):
        text = export_prism_model(small_system())
        assert text.startswith("ctmc")
        assert "module pump" in text and "endmodule" in text

    def test_variable_declarations(self):
        text = export_prism_model(small_system())
        assert "pump_up : bool init true;" in text
        assert "mode : [0..2] init 1;" in text

    def test_commands_labels_constants_rewards(self):
        text = export_prism_model(small_system())
        assert "[fail] pump_up -> 0.002 : (pump_up'=false);" in text
        assert 'label "down" = !pump_up;' in text
        assert "const int N = 3;" in text
        assert 'rewards "cost"' in text and "endrewards" in text
        assert "[fail] true : 10.0;" in text

    def test_description_is_emitted_as_comment(self):
        text = export_prism_model(small_system(), description="line one\nline two")
        assert text.splitlines()[0] == "// line one"
        assert text.splitlines()[1] == "// line two"

    def test_initial_override_changes_init_value(self):
        system = small_system().with_initial_state({"pump_up": False})
        text = export_prism_model(system)
        assert "pump_up : bool init false;" in text


class TestPropertiesExport:
    def test_formula_objects_and_strings(self):
        formulas = [
            parse_formula('P=? [ true U<=100 "down" ]'),
            parse_formula('S=? [ "down" ]'),
            'R{"cost"}=? [ C<=10 ]',
        ]
        text = export_prism_properties(formulas)
        lines = text.strip().splitlines()
        assert lines[0] == 'P=? [ true U<=100.0 "down" ]'
        assert lines[1] == 'S=? [ "down" ]'
        assert lines[2] == 'R{"cost"}=? [ C<=10 ]'

    def test_exported_properties_reparse(self):
        formulas = [parse_formula('P=? [ "down" U<=5 "down" ]')]
        text = export_prism_properties(formulas)
        reparsed = parse_formula(text.strip())
        assert str(reparsed) == str(formulas[0])
