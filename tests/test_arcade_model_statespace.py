"""Tests for the ArcadeModel container, spare units and the direct state-space generator."""

from fractions import Fraction

import numpy as np
import pytest

from repro.arcade import (
    ArcadeModel,
    BasicComponent,
    BasicEvent,
    FaultTree,
    KOfN,
    Or,
    RepairUnit,
    SpareManagementUnit,
    build_state_space,
)
from repro.arcade.components import ArcadeModelError
from repro.arcade.model import Disaster
from repro.ctmc import steady_state_distribution
from helpers import make_mini_model, make_spare_model


class TestSpareManagementUnit:
    def test_active_members_follow_preference_order(self):
        unit = SpareManagementUnit("pumps", ("p1", "p2", "p3"), required=2)
        assert unit.active_members({"p1", "p2", "p3"}) == ("p1", "p2")
        assert unit.active_members({"p2", "p3"}) == ("p2", "p3")
        assert unit.spares == 1
        assert unit.delivers_service({"p1", "p3"})
        assert not unit.delivers_service({"p3"})

    def test_dormant_rate_applied_to_standby_member(self):
        unit = SpareManagementUnit("pumps", ("p1", "p2"), required=1)
        cold = BasicComponent("p2", 100.0, 1.0, dormancy_factor=0.0)
        assert unit.failure_rate(cold, {"p1", "p2"}) == 0.0
        assert unit.failure_rate(cold, {"p2"}) == pytest.approx(0.01)

    def test_invalid_required_count(self):
        with pytest.raises(ArcadeModelError):
            SpareManagementUnit("pumps", ("p1",), required=2)

    def test_unknown_member_query(self):
        unit = SpareManagementUnit("pumps", ("p1",), required=1)
        with pytest.raises(ArcadeModelError):
            unit.is_active("p9", {"p1"})


class TestModelValidation:
    def test_component_covered_twice_rejected(self):
        components = (BasicComponent("a", 1.0, 1.0), BasicComponent("b", 1.0, 1.0))
        units = (
            RepairUnit("u1", "fcfs", ("a",)),
            RepairUnit("u2", "fcfs", ("a", "b")),
        )
        with pytest.raises(ArcadeModelError):
            ArcadeModel("m", components, units)

    def test_unknown_component_in_fault_tree_rejected(self):
        with pytest.raises(ArcadeModelError):
            ArcadeModel(
                "m",
                (BasicComponent("a", 1.0, 1.0),),
                fault_tree=FaultTree(BasicEvent("ghost")),
            )

    def test_unknown_component_in_disaster_rejected(self):
        with pytest.raises(ArcadeModelError):
            ArcadeModel(
                "m",
                (BasicComponent("a", 1.0, 1.0),),
                disasters=(Disaster("d", ("ghost",)),),
            )

    def test_lookups(self, mini_model):
        assert mini_model.component("alpha").mttf == 100.0
        with pytest.raises(ArcadeModelError):
            mini_model.component("ghost")
        assert mini_model.repair_unit_of("alpha").name == "unit"
        assert mini_model.spare_unit_of("alpha") is None
        assert mini_model.disaster("everything").failed_components == ("alpha", "beta", "gamma")

    def test_with_repair_strategy_sweeps(self, mini_model):
        changed = mini_model.with_repair_strategy("dedicated")
        assert changed.strategy_label() == "DED"
        assert mini_model.strategy_label() == "FRF-1"
        two_crews = mini_model.with_repair_strategy("fff", crews=2)
        assert two_crews.strategy_label() == "FFF-2"

    def test_service_level_via_model(self, mini_model):
        assert mini_model.service_level([]) == 1
        assert mini_model.service_level(["alpha"]) < 1

    def test_state_cost_rate(self, mini_model):
        # One component failed (3/h) and the single crew busy (0/h idle cost saved).
        cost = mini_model.state_cost_rate(["alpha"], {"unit": 1})
        assert cost == pytest.approx(3.0)
        cost_idle = mini_model.state_cost_rate([], {"unit": 0})
        assert cost_idle == pytest.approx(1.0)


class TestStateSpace:
    def test_mini_model_single_crew_counts(self, mini_space):
        # 3 components, FRF with distinct repair rates: queue order is determined
        # by the failed set, so the reachable space is 2^3 = 8 states.
        assert mini_space.num_states == 8
        assert mini_space.with_repairs is True

    def test_dedicated_equals_power_set(self):
        space = build_state_space(make_mini_model("dedicated"))
        assert space.num_states == 8
        assert space.num_transitions == 3 * 8

    def test_reliability_space_has_no_repairs(self, mini_model):
        space = build_state_space(mini_model, with_repairs=False)
        # Without repairs, transitions only remove components: 3*4 + ... = 12.
        assert space.num_transitions == 12
        # The all-failed state is absorbing.
        distribution = steady_state_distribution(space.chain)
        # FRF policy order: gamma (MTTR 1) before alpha (2) before beta (5).
        all_failed = space.state_index(((("gamma", "alpha", "beta"),), ()))
        assert distribution[all_failed] == pytest.approx(1.0)

    def test_labels_and_service_levels(self, mini_space):
        chain = mini_space.chain
        assert chain.label_mask("operational").sum() == 1  # only the all-up state
        assert chain.label_mask("down").sum() == 7
        assert mini_space.service_levels[0] == 1
        assert set(mini_space.service_level_array()) <= {0.0, 1.0, 1 / 3, 2 / 3}

    def test_states_with_service_at_least(self, mini_space):
        everything = mini_space.states_with_service_at_least(0.0)
        assert len(everything) == mini_space.num_states
        full = mini_space.states_with_service_at_least(1)
        assert len(full) == 1

    def test_disaster_state_lookup(self, mini_space):
        index = mini_space.disaster_state("everything")
        assert mini_space.failed_components(index) == {"alpha", "beta", "gamma"}
        distribution = mini_space.initial_distribution_for_disaster("everything")
        assert distribution[index] == 1.0
        good_chain = mini_space.chain_for_disaster("everything")
        assert good_chain.initial_state == index

    def test_cost_reward_structure(self, mini_space):
        rewards = mini_space.reward_model.reward_structure("cost").state_rewards
        # All-up state: crew idle -> cost 1; all-down state: 9 (components) + 0 (busy crew).
        assert rewards[0] == pytest.approx(1.0)
        all_down = mini_space.disaster_state("everything")
        assert rewards[all_down] == pytest.approx(9.0)

    def test_max_states_limit(self, mini_model):
        with pytest.raises(ArcadeModelError):
            build_state_space(mini_model, max_states=3)

    def test_unknown_state_lookup_raises(self, mini_space):
        with pytest.raises(ArcadeModelError):
            mini_space.state_index(((("ghost",),), ()))

    def test_uncovered_components_stay_failed(self):
        components = (BasicComponent("a", 10.0, 1.0), BasicComponent("b", 20.0, 2.0))
        model = ArcadeModel(
            "partial",
            components,
            repair_units=(RepairUnit("ru", "fcfs", ("a",)),),
            fault_tree=FaultTree(Or(BasicEvent("a"), BasicEvent("b"))),
        )
        space = build_state_space(model)
        # b is never repaired: in the long run it is failed with probability 1.
        distribution = steady_state_distribution(space.chain)
        b_failed = sum(
            probability
            for index, probability in enumerate(distribution)
            if "b" in space.failed_components(index)
        )
        assert b_failed == pytest.approx(1.0, abs=1e-9)


class TestSpareStateSpace:
    def test_cold_spare_cannot_fail_while_dormant(self):
        space = build_state_space(make_spare_model(dormancy=0.0))
        # From the all-up state, pump2 (the dormant spare) cannot fail: only
        # pump1 and the valve have outgoing failure transitions.
        assert len(space.chain.successors(0)) == 2

    def test_hot_spare_can_fail_while_dormant(self):
        space = build_state_space(make_spare_model(dormancy=1.0))
        assert len(space.chain.successors(0)) == 3

    def test_cold_spare_improves_availability(self):
        cold = build_state_space(make_spare_model(dormancy=0.0))
        hot = build_state_space(make_spare_model(dormancy=1.0))
        availability_cold = float(
            steady_state_distribution(cold.chain)[cold.chain.label_mask("operational")].sum()
        )
        availability_hot = float(
            steady_state_distribution(hot.chain)[hot.chain.label_mask("operational")].sum()
        )
        assert availability_cold > availability_hot
