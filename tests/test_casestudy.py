"""Tests for the water-treatment case study: facility builders and paper reproduction.

The heavyweight full sweeps (Line 1 with queued strategies) live in the
benchmark harness; these tests cover the facility construction and reproduce
the paper's numbers where that is cheap (dedicated repair, Line 2 sweeps,
service intervals, disaster definitions).
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.arcade import build_state_space
from repro.arcade.repair import RepairStrategy
from repro.casestudy import (
    DISASTER_1,
    DISASTER_2,
    PAPER_STRATEGIES,
    build_line1,
    build_line2,
)
from repro.casestudy.facility import StrategyConfiguration, build_line
from repro.casestudy.reporting import ascii_plot, curves_to_csv, format_table
from repro.measures import (
    combined_availability,
    reliability,
    service_intervals,
    steady_state_availability,
    survivability,
)

#: Published values from Table 2 of the paper (dedicated repair).
PAPER_TABLE2_DED = {"line1": 0.7442018, "line2": 0.8186317, "combined": 0.9536063}


class TestFacilityConstruction:
    def test_line1_inventory(self):
        model = build_line1()
        classes = {}
        for component in model.components:
            classes[component.component_class] = classes.get(component.component_class, 0) + 1
        assert classes == {"softening_tank": 3, "sand_filter": 3, "reservoir": 1, "pump": 4}
        assert len(model.repair_units) == 1
        assert model.spare_units[0].required == 3

    def test_line2_inventory(self):
        model = build_line2()
        classes = {}
        for component in model.components:
            classes[component.component_class] = classes.get(component.component_class, 0) + 1
        assert classes == {"softening_tank": 3, "sand_filter": 2, "reservoir": 1, "pump": 3}
        assert model.spare_units[0].required == 2

    def test_component_parameters_follow_figure2(self):
        model = build_line1()
        pump = model.component("line1_pump1")
        assert (pump.mttf, pump.mttr) == (500.0, 1.0)
        softener = model.component("line1_softener1")
        assert (softener.mttf, softener.mttr) == (2000.0, 5.0)
        sand_filter = model.component("line1_sandfilter1")
        assert (sand_filter.mttf, sand_filter.mttr) == (1000.0, 100.0)
        reservoir = model.component("line1_reservoir")
        assert (reservoir.mttf, reservoir.mttr) == (6000.0, 12.0)

    def test_disasters(self):
        line2 = build_line2()
        disaster2 = line2.disaster(DISASTER_2)
        assert len(disaster2.failed_components) == 5
        assert f"line2_reservoir" in disaster2.failed_components
        line1 = build_line1()
        assert len(line1.disaster(DISASTER_1).failed_components) == 4

    def test_paper_strategy_sweep(self):
        labels = [configuration.label for configuration in PAPER_STRATEGIES]
        assert labels == ["DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"]

    def test_build_line_dispatch(self):
        assert build_line("line1").name == "water_treatment_line1"
        assert build_line("line2", "fff", 2).strategy_label() == "FFF-2"
        with pytest.raises(ValueError):
            build_line("line3")

    def test_fully_operational_means_one_pump_may_fail(self):
        model = build_line1()
        assert model.fault_tree.is_operational(["line1_pump1"])
        assert model.fault_tree.is_down(["line1_pump1", "line1_pump2"])
        assert model.fault_tree.is_down(["line1_softener1"])


class TestServiceIntervals:
    def test_line1_has_three_intervals(self):
        intervals = service_intervals(build_line1())
        assert len(intervals) == 3
        assert intervals[0][0] == Fraction(1, 3)
        assert intervals[1][0] == Fraction(2, 3)
        assert intervals[2] == (Fraction(1), Fraction(1))

    def test_line2_has_four_intervals(self):
        intervals = service_intervals(build_line2())
        assert len(intervals) == 4
        assert [interval[0] for interval in intervals] == [
            Fraction(1, 3),
            Fraction(1, 2),
            Fraction(2, 3),
            Fraction(1),
        ]


class TestPaperNumbers:
    def test_table1_dedicated_state_space_exact(self):
        line1 = build_state_space(build_line1("dedicated"))
        assert (line1.num_states, line1.num_transitions) == (2048, 22528)
        line2 = build_state_space(build_line2("dedicated"))
        assert line2.num_states == 512

    def test_table2_dedicated_availability_matches_paper(self):
        availability1 = steady_state_availability(build_line1("dedicated"))
        availability2 = steady_state_availability(build_line2("dedicated"))
        assert availability1 == pytest.approx(PAPER_TABLE2_DED["line1"], abs=1e-5)
        assert availability2 == pytest.approx(PAPER_TABLE2_DED["line2"], abs=1e-5)
        assert combined_availability([availability1, availability2]) == pytest.approx(
            PAPER_TABLE2_DED["combined"], abs=1e-5
        )

    def test_table2_line2_strategy_ordering(self):
        values = {
            configuration.label: steady_state_availability(
                build_line2(configuration.strategy, configuration.crews)
            )
            for configuration in PAPER_STRATEGIES
        }
        assert values["DED"] >= max(values.values()) - 1e-12
        assert values["FRF-2"] > values["FRF-1"]
        assert values["FFF-2"] > values["FFF-1"]
        assert values["DED"] - values["FRF-2"] < 1e-3
        assert values["DED"] - values["FRF-1"] > 5e-3

    def test_figure3_line2_more_reliable_than_line1(self):
        for t in (100.0, 300.0, 600.0):
            assert reliability(build_line2(), t) > reliability(build_line1(), t)

    def test_figure8_fff1_recovers_slowest_to_x1(self):
        threshold = Fraction(1, 3)
        time = 20.0
        values = {
            configuration.label: survivability(
                build_state_space(build_line2(configuration.strategy, configuration.crews)),
                DISASTER_2,
                threshold,
                time,
            )
            for configuration in PAPER_STRATEGIES
        }
        assert values["FFF-1"] < min(v for k, v in values.items() if k != "FFF-1")
        assert values["DED"] >= max(values.values()) - 1e-12


class TestReporting:
    def test_format_table_alignment_and_errors(self):
        text = format_table(("a", "b"), [(1, 2.5), ("x", 3)], title="T")
        assert text.splitlines()[0] == "T"
        assert "2.5" in text
        with pytest.raises(ValueError):
            format_table(("a",), [(1, 2)])

    def test_curves_to_csv(self):
        times = np.array([0.0, 1.0])
        csv = curves_to_csv(times, {"s": np.array([0.5, 0.75])})
        lines = csv.splitlines()
        assert lines[0] == "t,s"
        assert lines[1].startswith("0,")
        with pytest.raises(ValueError):
            curves_to_csv(times, {"s": np.array([1.0])})

    def test_ascii_plot_contains_series_markers_and_legend(self):
        times = np.linspace(0.0, 1.0, 5)
        plot = ascii_plot(times, {"up": times, "down": 1 - times}, title="demo")
        assert "demo" in plot
        assert "* up" in plot and "+ down" in plot
        with pytest.raises(ValueError):
            ascii_plot(times, {})
