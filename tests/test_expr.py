"""Tests for the expression language (nodes and evaluation)."""

import pytest

from repro.expr import BinaryOp, Const, Environment, Ite, UnaryOp, Var
from repro.expr.environment import UnknownVariableError


class TestEvaluation:
    def test_constants(self):
        assert Const(3).evaluate({}) == 3
        assert Const(True).evaluate({}) is True

    def test_variables(self):
        assert Var("x").evaluate({"x": 7}) == 7

    def test_unknown_variable_raises(self):
        with pytest.raises(UnknownVariableError):
            Var("missing").evaluate(Environment({"x": 1}))

    def test_arithmetic(self):
        expression = (Var("a") + Const(2)) * Var("b") - Const(1)
        assert expression.evaluate({"a": 3, "b": 4}) == 19

    def test_division(self):
        assert (Var("a") / Const(4)).evaluate({"a": 10}) == 2.5

    def test_unary_minus(self):
        assert (-Var("a")).evaluate({"a": 5}) == -5

    def test_comparisons(self):
        env = {"x": 3, "y": 5}
        assert (Var("x") < Var("y")).evaluate(env) is True
        assert (Var("x") >= Var("y")).evaluate(env) is False
        assert Var("x").eq(3).evaluate(env) is True
        assert Var("x").ne(3).evaluate(env) is False

    def test_boolean_operators(self):
        env = {"p": True, "q": False}
        assert (Var("p") & Var("q")).evaluate(env) is False
        assert (Var("p") | Var("q")).evaluate(env) is True
        assert (~Var("q")).evaluate(env) is True
        assert Var("q").implies(Var("p")).evaluate(env) is True

    def test_ite(self):
        expression = Ite(Var("flag"), Const(1), Const(2))
        assert expression.evaluate({"flag": True}) == 1
        assert expression.evaluate({"flag": False}) == 2

    def test_min_max(self):
        assert BinaryOp("min", Var("a"), Var("b")).evaluate({"a": 3, "b": 7}) == 3
        assert BinaryOp("max", Var("a"), Var("b")).evaluate({"a": 3, "b": 7}) == 7

    def test_boolean_guard_on_number_raises(self):
        with pytest.raises(TypeError):
            (Var("x") & Const(True)).evaluate({"x": 5})


class TestStructure:
    def test_variables_collected(self):
        expression = (Var("a") + Var("b")) * Const(2) & Const(True) | Var("c")
        assert expression.variables() == {"a", "b", "c"}

    def test_substitute(self):
        expression = Var("a") + Var("b")
        substituted = expression.substitute({"a": Const(10)})
        assert substituted.evaluate({"b": 5}) == 15

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            BinaryOp("^", Const(1), Const(2))
        with pytest.raises(ValueError):
            UnaryOp("~", Const(1))

    def test_str_round_trips_through_parser(self):
        from repro.expr import parse_expression

        expression = Ite(Var("x") >= Const(2), Var("y") + Const(1), Const(0))
        reparsed = parse_expression(str(expression))
        for x in (0, 2, 5):
            for y in (1, 7):
                env = {"x": x, "y": y}
                assert reparsed.evaluate(env) == expression.evaluate(env)

    def test_literal_coercion_in_operators(self):
        assert (Var("a") + 1).evaluate({"a": 2}) == 3
        assert (2 * Var("a")).evaluate({"a": 4}) == 8


class TestEnvironment:
    def test_layering(self):
        outer = Environment({"x": 1, "y": 2})
        inner = outer.child({"y": 3})
        assert inner["x"] == 1
        assert inner["y"] == 3
        assert set(inner) == {"x", "y"}

    def test_with_updates_is_flat_copy(self):
        env = Environment({"x": 1})
        updated = env.with_updates({"x": 2, "z": 3})
        assert env["x"] == 1
        assert updated["x"] == 2 and updated["z"] == 3
