"""Tests for CTMC lumping and the DTMC helpers."""

import numpy as np
import pytest

from repro.ctmc import (
    CTMC,
    DTMC,
    embedded_dtmc,
    lump_ctmc,
    lumping_partition,
    steady_state_distribution,
    time_bounded_reachability,
    uniformized_dtmc,
)
from repro.ctmc.dtmc import unbounded_reachability
from repro.ctmc.lumping import count_blocks, lumping_partition_reference


def symmetric_two_component_chain() -> CTMC:
    """Two identical components with dedicated repair; states indexed by (up_a, up_b)."""
    lam, mu = 0.1, 1.0
    # state order: (up,up)=0, (up,down)=1, (down,up)=2, (down,down)=3
    rates = np.zeros((4, 4))
    rates[0, 1] = lam
    rates[0, 2] = lam
    rates[1, 0] = mu
    rates[1, 3] = lam
    rates[2, 0] = mu
    rates[2, 3] = lam
    rates[3, 1] = mu
    rates[3, 2] = mu
    return CTMC(
        rates,
        {0: 1.0},
        labels={"all_up": [0], "some_down": [1, 2, 3], "all_down": [3]},
    )


class TestLumping:
    def test_symmetric_states_are_merged(self):
        chain = symmetric_two_component_chain()
        partition = lumping_partition(chain)
        # States 1 and 2 are exchangeable: same labels, same aggregated rates.
        assert partition[1] == partition[2]
        assert count_blocks(partition) == 3

    def test_quotient_preserves_steady_state_of_labels(self):
        chain = symmetric_two_component_chain()
        quotient, partition = lump_ctmc(chain)
        assert quotient.num_states == 3
        full = steady_state_distribution(chain)
        small = steady_state_distribution(quotient)
        for label in ("all_up", "some_down", "all_down"):
            assert small[quotient.label_mask(label)].sum() == pytest.approx(
                full[chain.label_mask(label)].sum(), abs=1e-10
            )

    def test_quotient_preserves_transient_reachability(self):
        chain = symmetric_two_component_chain()
        quotient, _ = lump_ctmc(chain)
        for t in (0.5, 5.0, 50.0):
            assert time_bounded_reachability(quotient, "all_down", t) == pytest.approx(
                time_bounded_reachability(chain, "all_down", t), abs=1e-9
            )

    def test_distinct_labels_prevent_merging(self):
        chain = symmetric_two_component_chain()
        chain.add_label("a_down", [2, 3])
        partition = lumping_partition(chain)
        assert partition[1] != partition[2]

    def test_respect_initial_keeps_initial_state_separate(self):
        chain = symmetric_two_component_chain()
        moved = chain.with_initial_distribution({1: 1.0})
        partition = lumping_partition(moved, respect_initial=True)
        assert partition[1] != partition[2]

    def test_lumping_is_idempotent(self):
        chain = symmetric_two_component_chain()
        quotient, _ = lump_ctmc(chain)
        quotient2, _ = lump_ctmc(quotient)
        assert quotient2.num_states == quotient.num_states


class TestVectorizedRefinement:
    """The sparse `R @ indicator` refinement must equal the per-state loop."""

    @staticmethod
    def random_labelled_chain(num_states: int, seed: int, labels: int = 2) -> CTMC:
        rng = np.random.default_rng(seed)
        rates = rng.random((num_states, num_states)) * (
            rng.random((num_states, num_states)) < 0.3
        )
        np.fill_diagonal(rates, 0.0)
        rates[0, 1] = max(rates[0, 1], 0.25)  # guarantee a transition
        label_sets = {
            f"ap{index}": np.flatnonzero(
                rng.integers(0, 2, size=num_states).astype(bool)
            )
            for index in range(labels)
        }
        return CTMC(rates, {0: 1.0}, labels=label_sets)

    def test_matches_reference_on_symmetric_chain(self):
        chain = symmetric_two_component_chain()
        assert lumping_partition(chain) == lumping_partition_reference(chain)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("num_states", [5, 17, 40])
    def test_matches_reference_on_random_chains(self, num_states, seed):
        chain = self.random_labelled_chain(num_states, seed)
        assert lumping_partition(chain) == lumping_partition_reference(chain)

    @pytest.mark.parametrize("respect_initial", [False, True])
    def test_matches_reference_with_initial_splitting(self, respect_initial):
        chain = self.random_labelled_chain(23, seed=7)
        spread = chain.with_initial_distribution(
            np.linspace(1.0, 2.0, 23) / np.linspace(1.0, 2.0, 23).sum()
        )
        assert lumping_partition(
            spread, respect_initial=respect_initial
        ) == lumping_partition_reference(spread, respect_initial=respect_initial)

    def test_matches_reference_on_a_replicated_symmetric_chain(self):
        # A chain with large lumpable blocks: many exchangeable components.
        lam, mu, n = 0.2, 1.5, 6
        size = 2**n
        rates = np.zeros((size, size))
        for state in range(size):
            for bit in range(n):
                other = state ^ (1 << bit)
                rates[state, other] = lam if state < other else mu
        down_count = np.array([bin(s).count("1") for s in range(size)])
        chain = CTMC(
            rates,
            {0: 1.0},
            labels={"all_up": [0], "degraded": np.flatnonzero(down_count >= n - 1)},
        )
        vectorized = lumping_partition(chain)
        assert vectorized == lumping_partition_reference(chain)
        # the exchangeable structure must actually collapse the state space
        assert count_blocks(vectorized) < size

    def test_unlabelled_chain_collapses_to_rate_classes(self):
        chain = self.random_labelled_chain(12, seed=11, labels=0)
        assert lumping_partition(chain) == lumping_partition_reference(chain)


class TestDTMC:
    def test_row_sums_validated(self):
        with pytest.raises(Exception):
            DTMC(np.array([[0.5, 0.7], [0.0, 1.0]]))

    def test_step(self):
        dtmc = DTMC(np.array([[0.0, 1.0], [1.0, 0.0]]), np.array([1.0, 0.0]))
        after_one = dtmc.step(dtmc.initial_distribution)
        assert after_one == pytest.approx([0.0, 1.0])
        after_two = dtmc.step(dtmc.initial_distribution, steps=2)
        assert after_two == pytest.approx([1.0, 0.0])

    def test_reachability_probabilities(self):
        # Gambler-style chain: from state 1, reach 2 before 0 with prob 0.5.
        matrix = np.array(
            [
                [1.0, 0.0, 0.0],
                [0.5, 0.0, 0.5],
                [0.0, 0.0, 1.0],
            ]
        )
        dtmc = DTMC(matrix)
        probabilities = dtmc.reachability_probabilities([2])
        assert probabilities[1] == pytest.approx(0.5)
        assert probabilities[0] == pytest.approx(0.0)

    def test_embedded_dtmc_of_ctmc(self, absorbing_chain):
        jump = embedded_dtmc(absorbing_chain)
        matrix = jump.transition_matrix.toarray()
        assert matrix[0] == pytest.approx([0.0, 1.0, 0.0])
        assert matrix[2] == pytest.approx([0.0, 0.0, 1.0])  # absorbing self-loop

    def test_uniformized_dtmc(self, two_state_chain):
        dtmc, rate = uniformized_dtmc(two_state_chain)
        assert rate == pytest.approx(0.5)
        assert np.asarray(dtmc.transition_matrix.sum(axis=1)).ravel() == pytest.approx([1.0, 1.0])

    def test_unbounded_reachability_on_ctmc(self, absorbing_chain):
        probabilities = unbounded_reachability(absorbing_chain, "failed")
        assert probabilities == pytest.approx([1.0, 1.0, 1.0])
        restricted = unbounded_reachability(absorbing_chain, "failed", safe=[0])
        assert restricted[0] == pytest.approx(0.0)
