"""Tests for long-run measures on the batched/warm path.

Covers the acceptance criteria of the cached-linear-solver PR: stacked
``R=?[F phi]`` queries share one factorization, the Table 2 availability
portfolio repeated through the scenario service reports zero
factorization/BSCC cache misses on the second pass, batched ``S=?`` /
``R=?[F]`` values agree with the retained per-call references to <= 1e-12,
and the service observability layer (flush-latency histogram, /metrics
dumps) reports what happened.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.analysis import AnalysisSession, MeasureKind, MeasureRequest, SessionStats
from repro.casestudy.experiments import line_state_space, table2_availability
from repro.casestudy.facility import LINE1, LINE2, PAPER_STRATEGIES
from repro.csl import ModelChecker
from repro.ctmc import CTMC, MarkovRewardModel, RewardStructure
from repro.ctmc.ctmc import CTMCError
from repro.ctmc.dtmc import unbounded_reachability
from repro.ctmc.linsolve import reachability_reward_reference
from repro.ctmc.steady_state import steady_state_distribution
from repro.measures import (
    steady_state_availability,
    steady_state_availability_request,
)
from repro.service import (
    ArtifactCache,
    CacheStats,
    LatencyHistogram,
    ScenarioService,
    ServiceStats,
    paper_registry,
)


def cycle_chain(num_states: int = 5) -> CTMC:
    rates = np.zeros((num_states, num_states))
    for state in range(num_states):
        rates[state, (state + 1) % num_states] = 1.0 + 0.5 * state
    rates[0, num_states - 1] = 0.25
    return CTMC(
        rates,
        {0: 1.0},
        labels={"goal": [num_states - 1], "start": [0]},
    )


# ---------------------------------------------------------------------------
# planner grouping and validation
# ---------------------------------------------------------------------------
class TestLongrunPlanning:
    def test_stacked_reachability_rewards_cost_one_factorization(self):
        chain = cycle_chain()
        rng = np.random.default_rng(0)
        stats = SessionStats()
        session = AnalysisSession(stats=stats)
        columns = [rng.random(chain.num_states) for _ in range(6)]
        indices = [
            session.request(
                chain,
                (),
                kind=MeasureKind.REACHABILITY_REWARD,
                target="goal",
                rewards=column,
            )
            for column in columns
        ]
        results = session.execute()
        assert stats.groups == 1
        # The irreducible chain needs no reachability solve, so the six
        # stacked reward columns share exactly one LU factorization.
        assert stats.factorizations == 1
        assert stats.solved_columns == 6
        assert stats.sweeps == 0  # long-run kinds never sweep
        for index, column in zip(indices, columns):
            reference = reachability_reward_reference(
                chain, column, chain.label_mask("goal")
            )
            assert float(results[index].squeezed[0]) == pytest.approx(
                reference, rel=1e-12, abs=1e-12
            )

    def test_steady_state_targets_and_rewards_share_one_group(self):
        chain = cycle_chain()
        stats = SessionStats()
        session = AnalysisSession(stats=stats)
        session.request(chain, (), kind=MeasureKind.STEADY_STATE, target="goal")
        session.request(
            chain,
            (),
            kind=MeasureKind.STEADY_STATE,
            rewards=np.arange(chain.num_states, dtype=float),
        )
        session.execute()
        assert stats.groups == 1

    def test_unbounded_groups_split_by_target_and_safe(self):
        chain = cycle_chain()
        session = AnalysisSession()
        session.request(
            chain, (), kind=MeasureKind.UNBOUNDED_REACHABILITY, target="goal"
        )
        session.request(
            chain,
            (),
            kind=MeasureKind.UNBOUNDED_REACHABILITY,
            target="goal",
            safe="start",
        )
        plan = session.plan()
        assert plan.num_groups == 2
        assert all(group.longrun for group in plan.groups)

    def test_longrun_requests_reject_time_grids_and_bad_observables(self):
        chain = cycle_chain()
        session = AnalysisSession()
        session.request(chain, [1.0], kind=MeasureKind.STEADY_STATE, target="goal")
        with pytest.raises(CTMCError, match="no time grid"):
            session.execute()
        both = AnalysisSession()
        both.request(
            chain,
            (),
            kind=MeasureKind.STEADY_STATE,
            target="goal",
            rewards=np.ones(chain.num_states),
        )
        with pytest.raises(CTMCError, match="exactly one"):
            both.execute()
        neither = AnalysisSession()
        neither.request(chain, (), kind=MeasureKind.STEADY_STATE)
        with pytest.raises(CTMCError, match="exactly one"):
            neither.execute()
        safe = AnalysisSession()
        safe.request(
            chain,
            (),
            kind=MeasureKind.REACHABILITY_REWARD,
            target="goal",
            rewards=np.ones(chain.num_states),
            safe="start",
        )
        with pytest.raises(CTMCError, match="no safe set"):
            safe.execute()

    def test_initial_distribution_blocks_batch_through_longrun_kinds(self):
        chain = cycle_chain()
        block = np.eye(chain.num_states)[:3]
        session = AnalysisSession()
        index = session.request(
            chain,
            (),
            kind=MeasureKind.UNBOUNDED_REACHABILITY,
            target="goal",
            initial_distributions=block,
        )
        result = session.execute()[index]
        per_state = unbounded_reachability(chain, "goal")
        assert result.values.shape == (3, 1)
        assert result.values[:, 0] == pytest.approx(per_state[:3], abs=1e-12)


# ---------------------------------------------------------------------------
# CSL checker on the session path
# ---------------------------------------------------------------------------
class TestCheckerLongrunPath:
    def test_steady_state_query_matches_distribution_reference(self):
        chain = cycle_chain()
        checker = ModelChecker(chain)
        reference = steady_state_distribution(chain)
        assert checker.check('S=? [ "goal" ]') == pytest.approx(
            float(reference[chain.label_mask("goal")].sum()), abs=1e-12
        )

    def test_until_and_reward_queries_match_references(self):
        chain = cycle_chain()
        rewards = RewardStructure("cost", np.linspace(1.0, 2.0, chain.num_states))
        model = MarkovRewardModel(chain, rewards)
        checker = ModelChecker(model)
        reach_reference = float(
            chain.initial_distribution @ unbounded_reachability(chain, "goal")
        )
        assert checker.check('P=? [ true U "goal" ]') == pytest.approx(
            reach_reference, abs=1e-12
        )
        reward_reference = reachability_reward_reference(
            chain, rewards.state_rewards, chain.label_mask("goal")
        )
        assert checker.check('R=? [ F "goal" ]') == pytest.approx(
            reward_reference, rel=1e-12
        )
        steady_reference = float(
            steady_state_distribution(chain) @ rewards.state_rewards
        )
        assert checker.check("R=? [ S ]") == pytest.approx(steady_reference, abs=1e-12)

    def test_checker_with_artifacts_reuses_factorizations(self):
        chain = cycle_chain(7)
        cache = ArtifactCache()
        checker = ModelChecker(chain, artifacts=cache)
        first = checker.check('S=? [ "goal" ]')
        before = cache.stats()
        assert checker.check('S=? [ "goal" ]') == first
        deltas = cache.stats().misses_since(before)
        assert deltas.get("bscc", 0) == 0
        assert deltas.get("stationary", 0) == 0

    def test_per_state_steady_state_uses_block_solver(self, absorbing_chain):
        checker = ModelChecker(absorbing_chain)
        values = checker.check_states('S=? [ "failed" ]')
        # Every state eventually deadlocks in the absorbing failure state.
        assert values == pytest.approx([1.0, 1.0, 1.0], abs=1e-10)


# ---------------------------------------------------------------------------
# the warm path: Table 2 through the scenario service
# ---------------------------------------------------------------------------
def table2_portfolio(configurations) -> list[MeasureRequest]:
    return [
        steady_state_availability_request(
            line_state_space(line, configuration),
            tag=("table2", line, configuration.label),
        )
        for line in (LINE1, LINE2)
        for configuration in configurations
    ]


class TestWarmAvailabilityPortfolio:
    def test_repeat_portfolio_incurs_zero_longrun_cache_misses(self):
        configurations = PAPER_STRATEGIES[:2]
        cache = ArtifactCache()

        def sweep():
            async def run():
                async with ScenarioService(artifacts=cache) as service:
                    results = await service.submit_many(
                        table2_portfolio(configurations)
                    )
                    return [float(result.squeezed[0]) for result in results]

            return asyncio.run(run())

        cold = sweep()
        before = cache.stats()
        warm = sweep()
        deltas = cache.stats().misses_since(before)
        assert warm == cold  # identical artifacts -> identical values
        assert deltas.get("factorization", 0) == 0
        assert deltas.get("bscc", 0) == 0
        assert deltas.get("stationary", 0) == 0
        # The cross-check against the retained per-call reference.
        for value, request in zip(cold, table2_portfolio(configurations)):
            _, line, label = request.tag
            configuration = next(
                c for c in configurations if c.label == label
            )
            reference = float(
                steady_state_distribution(
                    line_state_space(line, configuration).chain
                )[request.chain.label_mask("operational")].sum()
            )
            assert value == pytest.approx(reference, abs=1e-12)

    def test_table2_session_matches_per_call_availability(self):
        configurations = PAPER_STRATEGIES[:2]
        stats = SessionStats()
        table = table2_availability(configurations, stats=stats)
        assert stats.requests == 2 * len(configurations)
        assert stats.sweeps == 0
        for configuration in configurations:
            row = table.row_by("strategy", configuration.label)
            reference = steady_state_availability(
                line_state_space(LINE1, configuration)
            )
            assert row[1] == pytest.approx(reference, abs=1e-12)

    def test_registry_exposes_the_table2_scenario(self):
        registry = paper_registry()
        assert "table2" in registry
        requests = registry.expand("table2")
        assert len(requests) == 2 * len(PAPER_STRATEGIES)
        assert all(
            request.kind is MeasureKind.STEADY_STATE for request in requests
        )
        lines = {request.tag[1] for request in requests}
        assert lines == {LINE1, LINE2}


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------
class TestObservability:
    def test_latency_histogram_buckets_and_quantiles(self):
        histogram = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 2.0):
            histogram.observe(value)
        assert histogram.observations == 5
        assert histogram.counts == [1, 2, 1, 1]
        assert histogram.max_seconds == 2.0
        assert histogram.quantile_bound(0.5) == 0.1
        assert histogram.quantile_bound(0.95) == float("inf")
        lines = histogram.metric_lines("latency_seconds")
        assert 'latency_seconds_bucket{le="0.1"} 3' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 5' in lines
        assert "latency_seconds_count 5" in lines

    def test_empty_histogram_summary_and_nan_quantile(self):
        histogram = LatencyHistogram()
        assert "no flushes" in histogram.summary()
        assert np.isnan(histogram.quantile_bound(0.5))

    def test_service_flushes_populate_the_latency_histogram(self):
        chain = cycle_chain()

        async def run():
            async with ScenarioService(artifacts=ArtifactCache()) as service:
                await service.submit(
                    MeasureRequest(
                        chain=chain, times=(), kind=MeasureKind.STEADY_STATE,
                        target="goal",
                    )
                )
                return service.stats

        stats = asyncio.run(run())
        assert stats.flush_latency.observations == stats.flushes == 1
        assert stats.flush_latency.total_seconds > 0.0
        assert "flush_latency" in stats.summary()

    def test_metrics_dumps_expose_counters(self):
        stats = ServiceStats()
        stats.submissions = 3
        stats.session.factorizations = 2
        stats.flush_latency.observe(0.02)
        text = stats.metrics()
        assert "repro_service_submissions_total 3" in text
        assert "repro_service_factorizations_total 2" in text
        assert "repro_service_flush_latency_seconds_count 1" in text

        cache = ArtifactCache()
        cache.get_or_create("bscc", ("x",), lambda: 1)
        cache.get_or_create("bscc", ("x",), lambda: 1)
        text = cache.stats().metrics()
        assert 'repro_cache_hits_total{kind="bscc"} 1' in text
        assert 'repro_cache_misses_total{kind="bscc"} 1' in text
        assert isinstance(cache.stats(), CacheStats)
