"""Chaos tests for the self-healing shard supervision layer.

Every fault here is injected deterministically through
:class:`repro.service.ChaosPolicy` (seeded via ``REPRO_CHAOS_SEED`` in CI)
or by killing worker processes directly, and every recovery claim of
``repro.service.shard`` is asserted end to end:

* a killed worker's in-flight requests retry transparently (failover to
  the surviving shard, or parked until the supervisor respawns the worker);
* a wedged-but-alive worker is caught by the heartbeat timeout, killed and
  restarted;
* the restart budget circuit-breaks a crash-looping shard, after which
  callers fail fast (and are counted in ``routed_dead``);
* a corrupted response payload fails exactly its own request;
* a dropped response is recovered only by its caller's own deadline.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.analysis import MeasureKind, MeasureRequest
from repro.ctmc import CTMC
from repro.service import (
    ChaosEvent,
    ChaosPolicy,
    ScenarioTimeout,
    ShardCrashed,
    ShardedScenarioService,
    chaos_seed,
    shard_for_fingerprint,
)
from repro.service.chaos import CHAOS_SEED_ENV
from repro.service.shard import (
    STATE_BROKEN,
    STATE_UP,
    _Shard,
    ShardedScenarioService as _Front,
)

NUM_SHARDS = 2

#: Supervision tuning shared by the recovery tests: fast respawns, a retry
#: budget generous enough that an aggressive heartbeat never fails a caller.
FAST_SUPERVISION = dict(
    coalesce_window=0.0,
    backoff_base=0.1,
    backoff_cap=0.5,
    retry_limit=4,
    restart_limit=4,
)


def random_chain(num_states: int, seed: int, rate_scale: float = 1.0) -> CTMC:
    rng = np.random.default_rng(seed)
    rates = rng.random((num_states, num_states)) * (
        rng.random((num_states, num_states)) < 0.4
    )
    np.fill_diagonal(rates, 0.0)
    rates[0, 1] = 0.5
    initial = rng.random(num_states)
    return CTMC(
        rates * rate_scale,
        initial / initial.sum(),
        labels={"target": [num_states - 1]},
    )


def chain_owned_by(shard: int, num_states: int = 6) -> CTMC:
    for seed in range(1000):
        chain = random_chain(num_states, seed=7000 + seed)
        if shard_for_fingerprint(chain.fingerprint, NUM_SHARDS) == shard:
            return chain
    raise AssertionError("no seed routed to the requested shard")  # pragma: no cover


def reachability_request(chain: CTMC, times=(0.5, 1.0, 2.0)) -> MeasureRequest:
    return MeasureRequest(
        chain=chain, times=times, kind=MeasureKind.REACHABILITY, target="target"
    )


async def wait_until(predicate, timeout: float = 30.0, interval: float = 0.05):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached within the deadline")
        await asyncio.sleep(interval)


# ---------------------------------------------------------------------------
# the deterministic schedule itself
# ---------------------------------------------------------------------------
class TestChaosPolicy:
    def test_from_seed_is_deterministic_and_covers_every_shard(self):
        seed = chaos_seed()
        first = ChaosPolicy.from_seed(seed, 4)
        again = ChaosPolicy.from_seed(seed, 4)
        assert first == again
        assert {event.shard for event in first.events} == {0, 1, 2, 3}
        actions = [event.action for event in first.events]
        assert actions.count("wedge") == 1
        assert actions.count("kill") == 3
        assert all(event.generation == 0 for event in first.events)
        assert ChaosPolicy.from_seed(seed + 1, 4) != first

    def test_seed_env_override(self, monkeypatch):
        monkeypatch.setenv(CHAOS_SEED_ENV, "424242")
        assert chaos_seed() == 424242
        monkeypatch.delenv(CHAOS_SEED_ENV)
        assert chaos_seed(default=7) == 7

    def test_script_keys_on_shard_and_generation(self):
        policy = ChaosPolicy(
            [
                ChaosEvent("kill", 0, 3),
                ChaosEvent("corrupt", 0, 5, generation=1),
                ChaosEvent("drop", 1, 2),
            ]
        )
        assert set(policy.script_for(0, 0)) == {3}
        assert set(policy.script_for(0, 1)) == {5}
        assert set(policy.script_for(1, 0)) == {2}
        assert policy.script_for(2, 0) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent("explode", 0, 1)
        with pytest.raises(ValueError):
            ChaosEvent("kill", 0, 0)  # at_message is 1-based
        with pytest.raises(ValueError):
            ChaosEvent("kill", -1, 1)
        with pytest.raises(ValueError):
            ChaosPolicy([ChaosEvent("kill", 0, 1), ChaosEvent("drop", 0, 1)])
        with pytest.raises(ValueError):
            ChaosPolicy.from_seed(1, 0)

    def test_describe_round_trips_the_schedule(self):
        policy = ChaosPolicy.from_seed(9, 2)
        described = policy.describe()
        assert len(described) == 2
        assert {entry["action"] for entry in described} <= {"kill", "wedge"}


# ---------------------------------------------------------------------------
# crash recovery: transparent retry, failover, parking
# ---------------------------------------------------------------------------
class TestCrashRecovery:
    def test_chaos_kill_is_transparent_with_failover(self):
        # Shard 0 dies on its second request; its in-flight work fails over
        # to shard 1 (or retries on the respawned worker) and every caller
        # still gets a correct answer.
        chains = [chain_owned_by(0) for _ in range(4)]
        chaos = ChaosPolicy([ChaosEvent("kill", 0, 2)])

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS, chaos=chaos, **FAST_SUPERVISION
            ) as sharded:
                results = await sharded.submit_many(
                    [reachability_request(chain) for chain in chains]
                )
                await wait_until(lambda: sharded._shards[0].state == STATE_UP)
                return results, sharded.stats

        results, stats = asyncio.run(run())
        assert len(results) == 4
        assert all(result.values.shape == (1, 3) for result in results)
        assert stats.completed == 4 and stats.failed == 0
        assert stats.retries >= 1
        assert sum(stats.restarts.values()) >= 1

    def test_parked_requests_survive_restart_without_failover(self):
        # failover=False: work for the dead shard parks until the
        # supervisor respawns it, then completes on the new incarnation.
        chains = [chain_owned_by(0) for _ in range(3)]
        chaos = ChaosPolicy([ChaosEvent("kill", 0, 2)])

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS, chaos=chaos, failover=False, **FAST_SUPERVISION
            ) as sharded:
                results = await sharded.submit_many(
                    [reachability_request(chain) for chain in chains]
                )
                return results, sharded.stats, sharded._shards[0].generation

        results, stats, generation = asyncio.run(run())
        assert len(results) == 3
        assert stats.completed == 3 and stats.failed == 0
        assert sum(stats.failovers.values()) == 0
        assert sum(stats.restarts.values()) >= 1
        assert generation >= 1

    def test_retry_budget_exhaustion_surfaces_shard_crashed(self):
        # retry_limit=0 and restart_limit=0: the original fail-fast
        # behaviour, now with the routed_dead counter on the reject path.
        victim = chain_owned_by(0, num_states=30)
        times = np.linspace(0.0, 40.0, 31)

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS,
                coalesce_window=0.0,
                restart_limit=0,
                retry_limit=0,
                failover=False,
                heartbeat_interval=None,
            ) as sharded:
                inflight = asyncio.ensure_future(
                    sharded.submit(reachability_request(victim, times))
                )
                await asyncio.sleep(0.05)
                sharded._shards[0].process.kill()
                outcome = await asyncio.gather(inflight, return_exceptions=True)
                with pytest.raises(ShardCrashed):
                    await sharded.submit(reachability_request(victim))
                return outcome[0], sharded.stats, sharded._shards[0].state

        outcome, stats, state = asyncio.run(run())
        assert isinstance(outcome, ShardCrashed)
        assert state == STATE_BROKEN
        assert stats.routed_dead == 1
        assert stats.failed >= 2  # the in-flight failure and the fast reject
        assert stats.retries == 0


# ---------------------------------------------------------------------------
# wedge detection via heartbeat
# ---------------------------------------------------------------------------
class TestWedgeDetection:
    def test_wedged_worker_is_killed_and_restarted(self):
        chain = chain_owned_by(0)
        chaos = ChaosPolicy([ChaosEvent("wedge", 0, 2, delay=3600.0)])

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS,
                chaos=chaos,
                heartbeat_interval=0.1,
                heartbeat_timeout=1.0,
                **FAST_SUPERVISION,
            ) as sharded:
                # Wait out boot so the wedge (not BOOT_GRACE) governs.
                await wait_until(lambda: sharded._shards[0].ready)
                first = await sharded.submit(reachability_request(chain))
                # Request 2 wedges the worker; the heartbeat must catch it.
                second = await sharded.submit(reachability_request(chain))
                # The retry may have completed via failover before the
                # respawn finishes; wait for the supervisor to catch up.
                await wait_until(
                    lambda: sum(sharded.stats.restarts.values()) >= 1
                )
                return first, second, sharded.stats

        first, second, stats = asyncio.run(run())
        np.testing.assert_allclose(first.values, second.values)
        assert sum(stats.heartbeat_misses.values()) >= 1
        assert sum(stats.restarts.values()) >= 1
        assert stats.failed == 0


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_crash_loop_breaks_the_circuit_and_fails_over(self):
        # The shard dies on generation 0 *and* generation 1 with
        # restart_limit=1: the second death must circuit-break it, and new
        # traffic for its chains must fail over to the survivor.
        chain = chain_owned_by(0)
        chaos = ChaosPolicy(
            [
                ChaosEvent("kill", 0, 1),
                ChaosEvent("kill", 0, 1, generation=1),
            ]
        )

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS,
                chaos=chaos,
                coalesce_window=0.0,
                backoff_base=0.1,
                backoff_cap=0.5,
                restart_limit=1,
                retry_limit=4,
            ) as sharded:
                results = [await sharded.submit(reachability_request(chain))]
                # Wait for the generation-1 respawn before resubmitting, so
                # the second request provably routes to (and kills) it
                # instead of failing over while the shard is restarting.
                await wait_until(
                    lambda: sharded._shards[0].state == STATE_UP
                    and sharded._shards[0].generation == 1
                )
                results.append(await sharded.submit(reachability_request(chain)))
                await wait_until(
                    lambda: sharded._shards[0].state == STATE_BROKEN
                )
                after = await sharded.submit(reachability_request(chain))
                snapshots = await sharded.shard_snapshots(timeout=10.0)
                return results, after, snapshots, sharded.stats

        results, after, snapshots, stats = asyncio.run(run())
        assert all(result.values.shape == (1, 3) for result in results + [after])
        broken = {snapshot.index: snapshot for snapshot in snapshots}[0]
        assert broken.state == STATE_BROKEN and not broken.alive
        assert broken.restarts == 1  # the budget allowed exactly one respawn
        assert sum(stats.failovers.values()) >= 1
        assert stats.failed == 0

    def test_broken_shard_without_failover_rejects_fast(self):
        chain = chain_owned_by(0)
        chaos = ChaosPolicy([ChaosEvent("kill", 0, 1)])

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS,
                chaos=chaos,
                coalesce_window=0.0,
                restart_limit=0,
                retry_limit=0,
                failover=False,
                heartbeat_interval=None,
            ) as sharded:
                with pytest.raises(ShardCrashed):
                    await sharded.submit(reachability_request(chain))
                await wait_until(
                    lambda: sharded._shards[0].state == STATE_BROKEN
                )
                with pytest.raises(ShardCrashed, match="cannot be served"):
                    await sharded.submit(reachability_request(chain))
                return sharded.stats

        stats = asyncio.run(run())
        assert stats.routed_dead >= 1
        assert stats.failed >= 2


# ---------------------------------------------------------------------------
# response-plane faults: corrupt, delay, drop
# ---------------------------------------------------------------------------
class TestResponseFaults:
    def test_corrupt_response_fails_only_its_own_request(self):
        # An undecodable payload must fail exactly its own caller with the
        # "undecodable shard response" error — and must not wedge the
        # reader thread: the next request on the same shard succeeds.
        chain = chain_owned_by(0)
        chaos = ChaosPolicy([ChaosEvent("corrupt", 0, 2)])

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS, chaos=chaos, coalesce_window=0.0
            ) as sharded:
                first = await sharded.submit(reachability_request(chain))
                with pytest.raises(RuntimeError, match="undecodable shard"):
                    await sharded.submit(reachability_request(chain))
                third = await sharded.submit(reachability_request(chain))
                return first, third, sharded.stats

        first, third, stats = asyncio.run(run())
        np.testing.assert_allclose(first.values, third.values)
        assert stats.completed == 2 and stats.failed == 1
        assert stats.retries == 0  # a decode failure is not a worker death
        assert sum(stats.restarts.values()) == 0

    def test_dropped_response_times_out_alone(self):
        chain = chain_owned_by(0)
        chaos = ChaosPolicy([ChaosEvent("drop", 0, 1)])

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS, chaos=chaos, coalesce_window=0.0
            ) as sharded:
                with pytest.raises(ScenarioTimeout):
                    await sharded.submit(reachability_request(chain), timeout=1.0)
                follow_up = await sharded.submit(reachability_request(chain))
                return follow_up, sharded.stats

        follow_up, stats = asyncio.run(run())
        assert follow_up.values.shape == (1, 3)
        assert stats.timeouts == 1 and stats.completed == 1

    def test_delayed_response_still_arrives(self):
        chain = chain_owned_by(0)
        chaos = ChaosPolicy([ChaosEvent("delay", 0, 1, delay=0.3)])

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS, chaos=chaos, coalesce_window=0.0
            ) as sharded:
                result = await sharded.submit(reachability_request(chain))
                return result, sharded.stats

        result, stats = asyncio.run(run())
        assert result.values.shape == (1, 3)
        assert stats.completed == 1 and stats.timeouts == 0


# ---------------------------------------------------------------------------
# the defensive decode path, exercised without any processes
# ---------------------------------------------------------------------------
class TestDecodeResponse:
    def _stub_shard(self):
        return _Shard(index=3, process=None, requests=None, responses=None)

    def test_undecodable_result_becomes_an_error_message(self):
        shard = self._stub_shard()
        kind, request_id, error, text = _Front._decode_response(
            shard, ("result", 17, b"\xff\xfe not a pickle")
        )
        assert (kind, request_id, error) == ("error", 17, None)
        assert "undecodable shard 3 response" in text

    def test_unpicklable_error_payload_degrades_to_text(self):
        shard = self._stub_shard()
        kind, request_id, error, text = _Front._decode_response(
            shard, ("error", 5, None, "ValueError: original message")
        )
        assert (kind, request_id, error) == ("error", 5, None)
        assert text == "ValueError: original message"

    def test_healthy_payloads_pass_through(self):
        import pickle

        shard = self._stub_shard()
        kind, request_id, payload = _Front._decode_response(
            shard, ("result", 1, pickle.dumps({"values": [1.0]}))
        )
        assert (kind, request_id) == ("result", 1)
        assert payload == {"values": [1.0]}


# ---------------------------------------------------------------------------
# timeout diagnostics
# ---------------------------------------------------------------------------
class TestTimeoutDetail:
    def test_timeout_message_names_the_shard(self):
        chain = chain_owned_by(0)
        chaos = ChaosPolicy([ChaosEvent("drop", 0, 1)])

        async def run():
            async with ShardedScenarioService(
                NUM_SHARDS, chaos=chaos, coalesce_window=0.0
            ) as sharded:
                with pytest.raises(ScenarioTimeout, match="in flight on shard 0"):
                    await sharded.submit(reachability_request(chain), timeout=1.0)

        asyncio.run(run())
