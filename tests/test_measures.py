"""Tests for the user-facing measures (availability, reliability, survivability, costs)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.arcade import build_state_space
from repro.measures import (
    accumulated_cost,
    accumulated_cost_curve,
    combined_availability,
    instantaneous_cost,
    instantaneous_cost_curve,
    reliability,
    reliability_curve,
    service_intervals,
    service_levels,
    states_with_service_at_least,
    steady_state_availability,
    steady_state_unavailability,
    survivability,
    survivability_curve,
    survivability_curves_by_interval,
    unreliability,
)
from repro.measures.service import service_distribution
from helpers import make_mini_model


class TestAvailability:
    def test_dedicated_availability_is_product_of_components(self):
        model = make_mini_model("dedicated")
        expected = 1.0
        for component in model.components:
            expected *= component.availability
        assert steady_state_availability(model) == pytest.approx(expected, abs=1e-10)
        assert steady_state_unavailability(model) == pytest.approx(1.0 - expected, abs=1e-10)

    def test_single_crew_is_worse_than_dedicated(self):
        dedicated = steady_state_availability(make_mini_model("dedicated"))
        single = steady_state_availability(make_mini_model("fastest_repair_first", 1))
        double = steady_state_availability(make_mini_model("fastest_repair_first", 2))
        assert single < double <= dedicated + 1e-12

    def test_accepts_prebuilt_state_space(self, mini_space):
        assert steady_state_availability(mini_space) == pytest.approx(
            steady_state_availability(mini_space.model)
        )

    def test_combined_availability(self):
        assert combined_availability([0.9]) == pytest.approx(0.9)
        assert combined_availability([0.7, 0.8]) == pytest.approx(0.94)
        assert combined_availability([0.5, 0.5, 0.5]) == pytest.approx(0.875)
        with pytest.raises(ValueError):
            combined_availability([])
        with pytest.raises(ValueError):
            combined_availability([1.5])


class TestReliability:
    def test_matches_series_system_formula(self, mini_model):
        # Without repair, a series system survives iff no component fails.
        total_rate = sum(component.failure_rate for component in mini_model.components)
        for t in (10.0, 100.0, 500.0):
            assert reliability(mini_model, t) == pytest.approx(np.exp(-total_rate * t), abs=1e-9)
            assert unreliability(mini_model, t) == pytest.approx(
                1.0 - np.exp(-total_rate * t), abs=1e-9
            )

    def test_strategy_does_not_matter(self):
        # Reliability ignores repair, so all strategies coincide (paper, Section 5).
        values = {
            strategy: reliability(make_mini_model(strategy), 100.0)
            for strategy in ("dedicated", "fcfs", "fastest_repair_first")
        }
        assert len({round(value, 12) for value in values.values()}) == 1

    def test_curve_shape(self, mini_model):
        times, values = reliability_curve(mini_model, 500.0, points=26)
        assert times.shape == values.shape == (26,)
        assert values[0] == pytest.approx(1.0)
        assert np.all(np.diff(values) <= 1e-12)

    def test_invalid_grid(self, mini_model):
        with pytest.raises(ValueError):
            reliability_curve(mini_model, 0.0)
        with pytest.raises(ValueError):
            reliability_curve(mini_model, 10.0, points=1)


class TestServiceMeasures:
    def test_levels_and_intervals(self, mini_model):
        levels = service_levels(mini_model)
        assert levels[0] == 0 and levels[-1] == 1
        intervals = service_intervals(mini_model)
        assert intervals[-1] == (Fraction(1), Fraction(1))

    def test_states_with_service_threshold(self, mini_space):
        # The mini model is a pure series system, so its only service levels
        # are 0 and 1: exactly one state delivers full service and every
        # state trivially delivers "at least zero" service.
        assert len(states_with_service_at_least(mini_space, 1)) == 1
        assert len(states_with_service_at_least(mini_space, 0)) == mini_space.num_states
        assert len(states_with_service_at_least(mini_space, Fraction(1, 3))) == 1

    def test_service_distribution_sums_to_one(self, mini_space):
        distribution = service_distribution(mini_space)
        assert sum(distribution.values()) == pytest.approx(1.0, abs=1e-9)
        assert distribution[Fraction(1)] > 0.85  # mostly fully operational


class TestSurvivability:
    def test_recovery_probability_increases_with_time(self, mini_space):
        values = survivability(mini_space, "everything", 1.0, [0.0, 1.0, 10.0, 100.0])
        assert values[0] == 0.0
        assert np.all(np.diff(values) >= -1e-12)
        assert values[-1] > 0.5

    def test_single_crew_slower_than_dedicated(self):
        time = 5.0
        slow = survivability(make_mini_model("fastest_repair_first", 1), "everything", 1.0, time)
        fast = survivability(make_mini_model("dedicated"), "everything", 1.0, time)
        assert fast > slow

    def test_lower_service_level_recovers_earlier(self, mini_space):
        time = 2.0
        partial = survivability(mini_space, "everything", Fraction(1, 3), time)
        full = survivability(mini_space, "everything", 1.0, time)
        assert partial >= full

    def test_requires_repairable_model(self, mini_model):
        space = build_state_space(mini_model, with_repairs=False)
        with pytest.raises(ValueError):
            survivability(space, "everything", 1.0, 1.0)

    def test_curve_and_per_interval_curves(self, mini_space):
        times, values = survivability_curve(mini_space, "everything", 1.0, 10.0, points=11)
        assert times.shape == values.shape == (11,)
        curves = survivability_curves_by_interval(mini_space, "everything", 10.0, points=6)
        assert len(curves) == len(service_intervals(mini_space))
        for (_low, _high), (_times, probabilities) in curves.items():
            assert probabilities[0] == 0.0


class TestCosts:
    def test_normal_operation_cost_rate(self, mini_space):
        # At t=0 everything is up: the single crew idles at 1/h.
        assert instantaneous_cost(mini_space, 0.0) == pytest.approx(1.0)

    def test_disaster_cost_rate_starts_high(self, mini_space):
        assert instantaneous_cost(mini_space, 0.0, "everything") == pytest.approx(9.0)

    def test_accumulated_cost_monotone(self, mini_space):
        times, values = accumulated_cost_curve(mini_space, 20.0, "everything", points=11)
        assert values[0] == 0.0
        assert np.all(np.diff(values) >= -1e-9)
        assert accumulated_cost(mini_space, 20.0, "everything") == pytest.approx(values[-1], rel=1e-9)

    def test_accumulated_cost_bounded_by_worst_case(self, mini_space):
        horizon = 10.0
        worst_rate = 9.0  # all three components failed, crew busy
        assert accumulated_cost(mini_space, horizon, "everything") <= worst_rate * horizon

    def test_accumulated_cost_after_disaster_exceeds_normal_operation(self, mini_space):
        horizon = 5.0
        assert accumulated_cost(mini_space, horizon, "everything") > accumulated_cost(
            mini_space, horizon
        )
