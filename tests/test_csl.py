"""Tests for the CSL/CSRL parser and model checker."""

import numpy as np
import pytest

from repro.csl import CSLParseError, ModelChecker, check, parse_formula
from repro.csl import formulas as F
from repro.ctmc import CTMC, MarkovRewardModel, RewardStructure


@pytest.fixture
def repairable_model() -> MarkovRewardModel:
    lam, mu = 0.02, 0.4
    chain = CTMC(
        np.array([[0.0, lam], [mu, 0.0]]),
        {0: 1.0},
        labels={"up": [0], "down": [1]},
    )
    return MarkovRewardModel(chain, RewardStructure("cost", np.array([0.0, 3.0])))


class TestParser:
    @pytest.mark.parametrize(
        "source, expected_type",
        [
            ('P=? [ true U<=100 "down" ]', F.ProbabilityQuery),
            ('P=? [ "up" U "down" ]', F.ProbabilityQuery),
            ('P=? [ F<=10 "down" ]', F.ProbabilityQuery),
            ('P=? [ G<=10 "up" ]', F.ProbabilityQuery),
            ('P=? [ X "down" ]', F.ProbabilityQuery),
            ('S=? [ "up" ]', F.SteadyStateQuery),
            ('R{"cost"}=? [ I=4.5 ]', F.RewardQuery),
            ('R{"cost"}=? [ C<=10 ]', F.RewardQuery),
            ("R=? [ S ]", F.RewardQuery),
            ('R=? [ F "up" ]', F.RewardQuery),
            ('"up" & !"down"', F.And),
            ('P>=0.99 [ true U<=10 "up" ]', F.ProbabilityBound),
        ],
    )
    def test_accepts(self, source, expected_type):
        assert isinstance(parse_formula(source), expected_type)

    @pytest.mark.parametrize(
        "source",
        [
            "",
            "P=? [ ]",
            'P=? [ "a" U ]',
            'Q=? [ "a" ]',
            'P=? [ true U<=x "a" ]',
            'R{cost}=? [ C<=10 ]',
            'S=? [ "a" ] trailing',
        ],
    )
    def test_rejects(self, source):
        with pytest.raises(CSLParseError):
            parse_formula(source)

    def test_round_trip_through_str(self):
        source = 'P=? [ "up" U<=12.5 "down" ]'
        formula = parse_formula(source)
        assert str(parse_formula(str(formula))) == str(formula)

    def test_interval_until(self):
        formula = parse_formula('P=? [ true U[2,5] "down" ]')
        path = formula.path
        assert isinstance(path, F.BoundedUntil)
        assert path.lower == 2.0 and path.upper == 5.0


class TestChecker:
    def test_steady_state_query(self, repairable_model):
        value = check(repairable_model, 'S=? [ "up" ]')
        assert value == pytest.approx(0.4 / 0.42, abs=1e-10)

    def test_bounded_until(self, repairable_model):
        lam = 0.02
        value = check(repairable_model, 'P=? [ true U<=10 "down" ]')
        assert value == pytest.approx(1.0 - np.exp(-lam * 10.0), abs=1e-9)

    def test_unbounded_until(self, repairable_model):
        assert check(repairable_model, 'P=? [ true U "down" ]') == pytest.approx(1.0)

    def test_next_operator(self, repairable_model):
        # From "up" every jump goes to "down".
        assert check(repairable_model, 'P=? [ X "down" ]') == pytest.approx(1.0)

    def test_globally(self, repairable_model):
        lam = 0.02
        value = check(repairable_model, 'P=? [ G<=10 "up" ]')
        assert value == pytest.approx(np.exp(-lam * 10.0), abs=1e-9)

    def test_interval_until_equals_difference_of_windows(self, repairable_model):
        # For this chain, P[true U[a,b] down] from "up" staying in true:
        # must be at least P(F<=b down) - P(F<=a down) ... here simply check
        # consistency with the zero-lower-bound case.
        full = check(repairable_model, 'P=? [ true U<=10 "down" ]')
        delayed = check(repairable_model, 'P=? [ true U[0,10] "down" ]')
        assert delayed == pytest.approx(full, abs=1e-9)

    def test_probability_bound_as_state_formula(self, repairable_model):
        assert check(repairable_model, 'P>=0.99 [ true U<=1000 "down" ]') is True
        assert check(repairable_model, 'P<=0.0001 [ true U<=1000 "down" ]') is False

    def test_boolean_connectives(self, repairable_model):
        checker = ModelChecker(repairable_model)
        mask = checker.check_states(parse_formula('"up" | "down"'))
        assert mask.all()
        mask = checker.check_states(parse_formula('!"up"'))
        assert list(mask) == [False, True]

    def test_reward_queries(self, repairable_model):
        lam, mu = 0.02, 0.4
        limit = 3.0 * lam / (lam + mu)
        assert check(repairable_model, 'R{"cost"}=? [ S ]') == pytest.approx(limit, abs=1e-10)
        assert check(repairable_model, 'R{"cost"}=? [ I=10000 ]') == pytest.approx(limit, abs=1e-6)
        assert check(repairable_model, 'R{"cost"}=? [ C<=0 ]') == 0.0
        # Expected cost until reaching "down": zero, since cost accrues only in "down".
        assert check(repairable_model, 'R{"cost"}=? [ F "down" ]') == pytest.approx(0.0, abs=1e-12)

    def test_reachability_reward_counts_time(self):
        chain = CTMC(
            np.array([[0.0, 0.5], [0.0, 0.0]]),
            {0: 1.0},
            labels={"goal": [1]},
        )
        model = MarkovRewardModel(chain, RewardStructure("time", np.array([1.0, 1.0])))
        # Expected time to absorb = 1/0.5 = 2.
        assert check(model, 'R{"time"}=? [ F "goal" ]') == pytest.approx(2.0)

    def test_reachability_reward_infinite_when_unreachable(self):
        chain = CTMC(np.zeros((2, 2)), {0: 1.0}, labels={"goal": [1]})
        model = MarkovRewardModel(chain, RewardStructure("time", np.ones(2)))
        assert check(model, 'R{"time"}=? [ F "goal" ]') == float("inf")

    def test_reward_query_without_reward_model_fails(self, two_state_chain):
        with pytest.raises(Exception):
            check(two_state_chain, 'R=? [ C<=10 ]')

    def test_state_formula_at_initial_state(self, repairable_model):
        assert check(repairable_model, '"up"') is True
        assert check(repairable_model, '"down"') is False

    def test_per_state_values(self, repairable_model):
        checker = ModelChecker(repairable_model)
        values = checker.check_states('P=? [ true U<=5 "down" ]')
        assert values.shape == (2,)
        assert values[1] == pytest.approx(1.0)
        assert 0.0 < values[0] < 1.0
