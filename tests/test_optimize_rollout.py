"""Tests for the coalesced rollout optimizer (`repro.optimize.rollout`).

Checks the two contract points of the issue: the optimized policy is at
least as good as every fixed-strategy baseline (to 1e-9), and all candidate
one-step deviations of a round are scored off one coalesced identity-block
sweep rather than one evaluation per candidate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import SessionStats
from repro.casestudy.experiments import line_service_interval_lower
from repro.casestudy.facility import DISASTER_2, LINE2, build_line
from repro.optimize import (
    OptimizeError,
    OptimizerStats,
    RepairCTMDP,
    default_candidates,
    rollout_optimize,
)
from repro.service import ArtifactCache
from tests.helpers import make_mini_model


@pytest.fixture(scope="module")
def line2_ctmdp() -> RepairCTMDP:
    return RepairCTMDP(build_line(LINE2))


class TestSurvivability:
    def test_result_dominates_every_baseline(self, line2_ctmdp):
        stats = OptimizerStats()
        result = rollout_optimize(
            line2_ctmdp,
            "survivability",
            disaster=DISASTER_2,
            horizon=24.0,
            threshold=line_service_interval_lower(LINE2, 0),
            points=17,
            stats=stats,
        )
        assert set(result.baselines) == set(default_candidates(line2_ctmdp))
        for label, value in result.baselines.items():
            assert result.value >= value - 1e-9, label
        assert result.value == result.curve[-1]
        assert result.curve.shape == result.times.shape
        assert result.best_baseline == result.baselines[result.base_label]

    def test_candidates_ride_coalesced_sweeps(self, line2_ctmdp):
        """K one-step deviations cost ~1 sweep per round, not K."""
        stats = OptimizerStats()
        session_stats = SessionStats()
        rollout_optimize(
            line2_ctmdp,
            "survivability",
            disaster=DISASTER_2,
            horizon=24.0,
            threshold=line_service_interval_lower(LINE2, 0),
            points=17,
            stats=stats,
            session_stats=session_stats,
        )
        deviations_per_round = line2_ctmdp.total_actions - line2_ctmdp.num_states
        assert stats.candidate_actions >= deviations_per_round
        # Every round's identity block collapses to one group -> ~1 sweep.
        assert stats.coalesced_sweeps <= 2 * stats.rollout_iterations
        assert stats.sweeps_saved >= deviations_per_round - 2 * stats.rollout_iterations
        assert stats.policy_evaluations == stats.rollout_iterations

    def test_missing_threshold_raises(self, line2_ctmdp):
        with pytest.raises(OptimizeError, match="threshold"):
            rollout_optimize(
                line2_ctmdp, "survivability", disaster=DISASTER_2, horizon=24.0
            )


class TestAccumulatedCost:
    def test_result_costs_at_most_every_baseline(self, line2_ctmdp):
        result = rollout_optimize(
            line2_ctmdp,
            "accumulated_cost",
            disaster=DISASTER_2,
            horizon=24.0,
            points=13,
        )
        for label, value in result.baselines.items():
            assert result.value <= value + 1e-9, label
        # Accumulated cost grows with time.
        assert np.all(np.diff(result.curve) >= -1e-12)


class TestWarmPath:
    def test_reoptimization_reuses_cached_artifacts(self):
        """Same CTMDP + shared artifact cache: the rerun adds no misses."""
        ctmdp = RepairCTMDP(make_mini_model())
        artifacts = ArtifactCache()
        kwargs = dict(
            disaster="everything",
            horizon=10.0,
            threshold=1.0,
            points=9,
            artifacts=artifacts,
        )
        first = rollout_optimize(ctmdp, "survivability", **kwargs)
        before = artifacts.stats()
        second = rollout_optimize(ctmdp, "survivability", **kwargs)
        deltas = artifacts.stats().misses_since(before)
        assert all(value == 0 for value in deltas.values()), deltas
        assert second.value == pytest.approx(first.value, abs=1e-12)

    def test_unknown_objective_raises(self):
        ctmdp = RepairCTMDP(make_mini_model())
        with pytest.raises(OptimizeError, match="finite-horizon objective"):
            rollout_optimize(ctmdp, "availability", disaster="everything", horizon=1.0)
