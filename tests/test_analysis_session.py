"""Tests for the batched analysis-session API (`repro.analysis`).

Covers the planner's grouping rules (what may and may not share a sweep),
the executor's batching axes (initial distributions, reward columns), the
sweep-count acceptance criterion on the paper's Figure 4/5 family, the
lumped quotient path, and the CLI's figure-pair deduplication.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.analysis import AnalysisSession, MeasureKind, MeasureRequest, SessionStats
from repro.casestudy import experiments as exp
from repro.casestudy.facility import (
    DISASTER_1,
    DISASTER_2,
    LINE2,
    PAPER_STRATEGIES,
)
from repro.cli import main
from repro.ctmc import CTMC
from repro.ctmc.ctmc import CTMCError
from repro.ctmc.rewards import cumulative_reward_curve, instantaneous_reward_curve
from repro.ctmc.transient import time_bounded_reachability, transient_distributions
from repro.measures import survivability, survivability_request
from repro.measures.costs import accumulated_cost_request, instantaneous_cost_request


def random_chain(num_states: int, seed: int, density: float = 0.35) -> CTMC:
    rng = np.random.default_rng(seed)
    rates = rng.random((num_states, num_states)) * (
        rng.random((num_states, num_states)) < density
    )
    rates[0, 1] = 0.5  # make sure the chain has at least one transition
    np.fill_diagonal(rates, 0.0)
    initial = rng.random(num_states)
    return CTMC(
        rates,
        initial / initial.sum(),
        labels={"target": [num_states - 1], "bad": [0]},
    )


GRID = [0.0, 0.5, 2.0, 0.5, 5.0]


# ---------------------------------------------------------------------------
# planner grouping rules
# ---------------------------------------------------------------------------
class TestPlannerGrouping:
    def test_same_chain_same_grid_share_one_group(self):
        chain = random_chain(8, seed=0)
        rewards = np.arange(8.0)
        session = AnalysisSession()
        session.request(chain, GRID, kind=MeasureKind.TRANSIENT)
        session.request(chain, GRID, kind=MeasureKind.INSTANTANEOUS_REWARD, rewards=rewards)
        session.request(chain, GRID, kind=MeasureKind.CUMULATIVE_REWARD, rewards=rewards)
        plan = session.plan()
        assert plan.num_groups == 1
        assert len(plan.groups[0].members) == 3

    def test_duplicate_grid_objects_are_merged(self):
        chain = random_chain(8, seed=1)
        session = AnalysisSession()
        session.request(chain, np.linspace(0.0, 4.0, 9), kind=MeasureKind.TRANSIENT)
        session.request(chain, np.linspace(0.0, 4.0, 9), kind=MeasureKind.TRANSIENT)
        assert session.plan().num_groups == 1

    def test_different_grids_never_merge(self):
        chain = random_chain(8, seed=2)
        session = AnalysisSession()
        session.request(chain, [1.0, 2.0], kind=MeasureKind.TRANSIENT)
        session.request(chain, [1.0, 2.5], kind=MeasureKind.TRANSIENT)
        assert session.plan().num_groups == 2

    def test_different_chains_never_merge(self):
        session = AnalysisSession()
        session.request(random_chain(8, seed=3), GRID, kind=MeasureKind.TRANSIENT)
        session.request(random_chain(8, seed=4), GRID, kind=MeasureKind.TRANSIENT)
        assert session.plan().num_groups == 2

    def test_different_epsilon_never_merges(self):
        chain = random_chain(8, seed=5)
        session = AnalysisSession()
        session.request(chain, GRID, kind=MeasureKind.TRANSIENT, epsilon=1e-8)
        session.request(chain, GRID, kind=MeasureKind.TRANSIENT, epsilon=1e-12)
        assert session.plan().num_groups == 2

    def test_different_targets_never_merge(self):
        # Different target sets induce different absorbing transforms, hence
        # different operating chains (and typically different rates).
        chain = random_chain(8, seed=6)
        session = AnalysisSession()
        session.request(chain, GRID, kind=MeasureKind.REACHABILITY, target="target")
        session.request(chain, GRID, kind=MeasureKind.REACHABILITY, target="bad")
        assert session.plan().num_groups == 2

    def test_equal_targets_share_transform_and_group(self):
        chain = random_chain(8, seed=7)
        session = AnalysisSession()
        session.request(chain, GRID, kind=MeasureKind.REACHABILITY, target="target")
        session.request(chain, GRID, kind=MeasureKind.REACHABILITY, target=[7])
        assert session.plan().num_groups == 1

    def test_unbatched_session_gives_one_group_per_request(self):
        chain = random_chain(8, seed=8)
        session = AnalysisSession(batched=False)
        session.request(chain, GRID, kind=MeasureKind.TRANSIENT)
        session.request(chain, GRID, kind=MeasureKind.TRANSIENT)
        assert session.plan().num_groups == 2

    def test_invalid_requests_are_rejected(self):
        chain = random_chain(6, seed=9)
        session = AnalysisSession()
        session.request(chain, [[1.0]], kind=MeasureKind.TRANSIENT)  # 2-D grid
        with pytest.raises(CTMCError):
            session.plan()
        session = AnalysisSession()
        session.request(chain, [-1.0], kind=MeasureKind.TRANSIENT)
        with pytest.raises(CTMCError):
            session.plan()
        session = AnalysisSession()
        session.request(chain, [1.0], kind=MeasureKind.REACHABILITY)  # no target
        with pytest.raises(CTMCError):
            session.plan()
        session = AnalysisSession()
        session.request(
            chain, [0.5], kind=MeasureKind.INTERVAL_REACHABILITY,
            target="target", lower=1.0,  # grid point below the lower bound
        )
        with pytest.raises(CTMCError):
            session.plan()


# ---------------------------------------------------------------------------
# executor batching axes
# ---------------------------------------------------------------------------
class TestExecutorBatching:
    def test_permuted_initial_blocks_round_trip(self):
        chain = random_chain(9, seed=10)
        rng = np.random.default_rng(11)
        initials = rng.random((3, 9))
        initials /= initials.sum(axis=1, keepdims=True)

        session = AnalysisSession()
        forward = session.request(
            chain, GRID, kind=MeasureKind.REACHABILITY, target="target",
            initial_distributions=initials,
        )
        backward = session.request(
            chain, GRID, kind=MeasureKind.REACHABILITY, target="target",
            initial_distributions=initials[::-1].copy(),
        )
        plan = session.plan()
        assert plan.num_groups == 1
        results = session.execute()
        # one sweep served both requests; rows must come back in request order
        assert results[forward].group_index == results[backward].group_index
        references = [
            time_bounded_reachability(
                chain, "target", GRID, initial_distribution=initials[i]
            )
            for i in range(3)
        ]
        for i in range(3):
            np.testing.assert_allclose(
                results[forward].values[i], references[i], atol=1e-12
            )
            np.testing.assert_allclose(
                results[backward].values[i], references[2 - i], atol=1e-12
            )

    def test_duplicate_initials_are_deduplicated_but_results_complete(self):
        chain = random_chain(7, seed=12)
        pi0 = chain.initial_distribution
        block = np.stack([pi0, pi0, pi0])
        session = AnalysisSession()
        index = session.request(
            chain, GRID, kind=MeasureKind.TRANSIENT, initial_distributions=block
        )
        result = session.execute()[index]
        assert result.values.shape == (3, len(GRID), 7)
        reference = transient_distributions(chain, GRID)
        for row in range(3):
            np.testing.assert_allclose(result.values[row], reference, atol=1e-12)

    def test_mixed_kinds_share_one_sweep(self):
        chain = random_chain(10, seed=13)
        rewards = np.arange(10.0)
        stats = SessionStats()
        session = AnalysisSession(stats=stats)
        transient = session.request(chain, GRID, kind=MeasureKind.TRANSIENT)
        instantaneous = session.request(
            chain, GRID, kind=MeasureKind.INSTANTANEOUS_REWARD, rewards=rewards
        )
        cumulative = session.request(
            chain, GRID, kind=MeasureKind.CUMULATIVE_REWARD, rewards=rewards
        )
        results = session.execute()
        assert stats.groups == 1
        assert stats.sweeps == 1
        np.testing.assert_allclose(
            results[transient].squeezed, transient_distributions(chain, GRID), atol=1e-12
        )
        np.testing.assert_allclose(
            results[instantaneous].squeezed,
            instantaneous_reward_curve((chain, rewards), GRID),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            results[cumulative].squeezed,
            cumulative_reward_curve((chain, rewards), GRID),
            atol=1e-12,
        )

    def test_interval_until_lower_zero_is_plain_bounded_until(self):
        # U[0, t] must equal U<=t, including the CSL edge where the initial
        # state satisfies the target but not the safe formula: the path wins
        # immediately, it is not "blocked".
        chain = CTMC(
            np.array([[0.0, 1.0], [0.0, 0.0]]),
            {0: 1.0},
            labels={"goal": [0], "ok": [1]},
        )
        session = AnalysisSession()
        interval = session.request(
            chain, [1.0], kind=MeasureKind.INTERVAL_REACHABILITY,
            target="goal", safe="ok", lower=0.0,
        )
        plain = session.request(
            chain, [1.0], kind=MeasureKind.REACHABILITY, target="goal", safe="ok",
        )
        results = session.execute()
        assert results[interval].squeezed[0] == pytest.approx(1.0)
        assert results[interval].squeezed[0] == results[plain].squeezed[0]
        # both were even planned into the same group
        assert results[interval].group_index == results[plain].group_index

    def test_interval_until_matches_backward_recursion(self):
        from repro.csl.checker import ModelChecker
        from repro.csl.parser import parse_formula

        chain = random_chain(9, seed=14)
        checker = ModelChecker(chain)
        session = AnalysisSession()
        index = session.request(
            chain, [1.0, 2.5], kind=MeasureKind.INTERVAL_REACHABILITY,
            target="target", lower=0.5,
        )
        values = session.execute()[index].squeezed
        for time, value in zip([1.0, 2.5], values):
            formula = parse_formula(f'P=? [ true U[0.5,{time}] "target" ]')
            per_state = checker.check_states(formula)
            reference = float(chain.initial_distribution @ per_state)
            assert value == pytest.approx(reference, abs=1e-10)

    def test_interval_groups_share_phases_across_grids(self):
        # Interval groups with equal (safe, target, lower) but different
        # grids are bundled: one backward sweep over the union of horizons
        # plus one forward sweep — 2 sweeps total instead of 2 per grid.
        chain = random_chain(9, seed=16)
        grids = ([1.0, 2.5], [1.5, 3.0, 4.0], [0.75])
        stats = SessionStats()
        session = AnalysisSession(stats=stats)
        indices = [
            session.request(
                chain, grid, kind=MeasureKind.INTERVAL_REACHABILITY,
                target="target", lower=0.5,
            )
            for grid in grids
        ]
        results = session.execute()
        assert stats.groups == len(grids)  # still one group per grid
        assert stats.sweeps == 2  # ... but the phases are shared
        for grid, index in zip(grids, indices):
            single = AnalysisSession()
            single_index = single.request(
                chain, grid, kind=MeasureKind.INTERVAL_REACHABILITY,
                target="target", lower=0.5,
            )
            np.testing.assert_allclose(
                results[index].squeezed,
                single.execute()[single_index].squeezed,
                atol=1e-12,
            )

    def test_unbatched_interval_groups_do_not_bundle(self):
        # batched=False is the per-request comparison baseline: identical
        # interval requests must keep their independent backward/forward
        # sweeps (2 each) instead of sharing them.
        chain = random_chain(9, seed=18)
        stats = SessionStats()
        session = AnalysisSession(batched=False, stats=stats)
        for _ in range(2):
            session.request(
                chain, [1.0, 2.0], kind=MeasureKind.INTERVAL_REACHABILITY,
                target="target", lower=0.5,
            )
        session.execute()
        assert stats.groups == 2
        assert stats.sweeps == 4

    def test_interval_groups_with_different_signatures_do_not_bundle(self):
        chain = random_chain(9, seed=17)
        stats = SessionStats()
        session = AnalysisSession(stats=stats)
        session.request(
            chain, [1.0], kind=MeasureKind.INTERVAL_REACHABILITY,
            target="target", lower=0.5,
        )
        session.request(  # different lower bound: its own backward phase
            chain, [1.5], kind=MeasureKind.INTERVAL_REACHABILITY,
            target="target", lower=0.75,
        )
        session.execute()
        assert stats.groups == 2
        assert stats.sweeps == 4


# ---------------------------------------------------------------------------
# acceptance: the Figure 4/5 family costs one sweep per (chain, rate, grid)
# ---------------------------------------------------------------------------
class TestFigureFamilies:
    def test_fig4_5_family_one_sweep_per_group(self):
        stats = SessionStats()
        figure4, figure5 = exp.figure4_5_survivability_line1(points=9, stats=stats)
        # 3 strategies x 2 service intervals = 6 distinct transformed chains;
        # the whole family must cost exactly one sweep per group.
        assert stats.requests == 6
        assert stats.groups == 6
        assert stats.sweeps == stats.groups
        # and the batched values must agree with the per-call legacy API
        times = figure4.times
        for interval_index, figure in ((0, figure4), (1, figure5)):
            threshold = exp._line_service_interval_lower("line1", interval_index)
            for configuration in exp._LINE1_SURVIVABILITY_STRATEGIES:
                space = exp.line_state_space("line1", configuration)
                legacy = survivability(space, DISASTER_1, threshold, times)
                np.testing.assert_allclose(
                    figure.series[configuration.label], legacy, atol=1e-12
                )

    def test_multi_disaster_requests_share_one_sweep(self):
        # Line 2 defines two disasters; curves for both on one strategy and
        # service level differ only in the initial distribution and must be
        # planned into a single group (one sweep, two batched initials).
        configuration = PAPER_STRATEGIES[0]
        space = exp.line_state_space(LINE2, configuration)
        threshold = exp._line_service_interval_lower(LINE2, 0)
        times = np.linspace(0.0, 40.0, 9)
        stats = SessionStats()
        session = AnalysisSession(stats=stats)
        indices = {
            disaster: session.add(
                survivability_request(space, disaster, threshold, times, tag=disaster)
            )
            for disaster in (DISASTER_1, DISASTER_2)
        }
        results = session.execute()
        assert stats.groups == 1
        assert stats.sweeps == 1
        for disaster, index in indices.items():
            legacy = survivability(space, disaster, threshold, times)
            np.testing.assert_allclose(results[index].squeezed, legacy, atol=1e-12)


# ---------------------------------------------------------------------------
# lumped quotients preserve the case-study measures
# ---------------------------------------------------------------------------
class TestLumpedSessions:
    @pytest.mark.parametrize("configuration", PAPER_STRATEGIES[:3], ids=lambda c: c.label)
    def test_lumped_survivability_matches_unlumped(self, configuration):
        space = exp.line_state_space(LINE2, configuration)
        threshold = exp._line_service_interval_lower(LINE2, 0)
        times = np.linspace(0.0, 50.0, 11)

        curves = {}
        lumped_states = {}
        for lump in (False, True):
            session = AnalysisSession(lump=lump, epsilon=1e-14)
            indices = [
                session.add(
                    survivability_request(space, disaster, threshold, times)
                )
                for disaster in (DISASTER_1, DISASTER_2)
            ]
            results = session.execute()
            curves[lump] = [results[i].squeezed for i in indices]
            lumped_states[lump] = results[indices[0]].lumped_states
        assert lumped_states[False] is None
        assert lumped_states[True] is not None
        assert lumped_states[True] < space.chain.num_states
        for unlumped, lumped in zip(curves[False], curves[True]):
            np.testing.assert_allclose(lumped, unlumped, atol=1e-12)

    def test_lumped_cost_curves_match_unlumped(self):
        configuration = PAPER_STRATEGIES[2]
        space = exp.line_state_space(LINE2, configuration)
        times = np.linspace(0.0, 30.0, 9)
        values = {}
        for lump in (False, True):
            session = AnalysisSession(lump=lump, epsilon=1e-14)
            instantaneous = session.add(
                instantaneous_cost_request(space, times, DISASTER_2)
            )
            accumulated = session.add(
                accumulated_cost_request(space, times, DISASTER_2)
            )
            results = session.execute()
            values[lump] = (
                results[instantaneous].squeezed,
                results[accumulated].squeezed,
            )
        np.testing.assert_allclose(values[True][0], values[False][0], atol=1e-12)
        np.testing.assert_allclose(values[True][1], values[False][1], atol=1e-12)

    def test_transient_groups_are_never_lumped(self):
        chain = random_chain(8, seed=15)
        session = AnalysisSession(lump=True)
        index = session.request(chain, GRID, kind=MeasureKind.TRANSIENT)
        result = session.execute()[index]
        assert result.lumped_states is None
        np.testing.assert_allclose(
            result.squeezed, transient_distributions(chain, GRID), atol=1e-12
        )

    def test_interval_and_longrun_groups_run_on_quotients(self):
        # The PR 10 coverage: interval-until bundles and long-run groups
        # report quotient state counts, and their lumped values match the
        # unlumped path exactly.
        space = exp.line_state_space(LINE2, PAPER_STRATEGIES[0])
        chain = space.chain
        target = space.states_with_service_at_least(
            exp.line_service_interval_lower(LINE2, 0)
        )
        times = np.linspace(2.0, 20.0, 7)
        values = {}
        blocks = {}
        for lump in (False, True):
            session = AnalysisSession(lump=lump, epsilon=1e-14)
            interval = session.request(
                chain, times, kind=MeasureKind.INTERVAL_REACHABILITY,
                target=target, lower=2.0,
            )
            steady = session.request(
                chain, (), kind=MeasureKind.STEADY_STATE, target=target
            )
            results = session.execute()
            values[lump] = (results[interval].squeezed, results[steady].squeezed)
            blocks[lump] = (
                results[interval].lumped_states,
                results[steady].lumped_states,
            )
        assert blocks[False] == (None, None)
        assert blocks[True][0] is not None and blocks[True][0] < chain.num_states
        assert blocks[True][1] is not None and blocks[True][1] < chain.num_states
        np.testing.assert_allclose(values[True][0], values[False][0], atol=1e-12)
        np.testing.assert_allclose(values[True][1], values[False][1], atol=1e-12)


# ---------------------------------------------------------------------------
# degradation: failed quotient builds tombstone instead of re-failing
# ---------------------------------------------------------------------------
class TestQuotientTombstones:
    def _request(self, session, chain):
        return session.request(
            chain, GRID, kind=MeasureKind.REACHABILITY, target="target"
        )

    def test_failed_build_warns_and_counts_exactly_once(self, monkeypatch):
        from repro.analysis import planner
        from repro.service import ArtifactCache

        calls = {"builds": 0}

        def exploding_build(chain, observables):
            calls["builds"] += 1
            raise ValueError("refinement exploded")

        monkeypatch.setattr(planner, "_build_quotient", exploding_build)
        cache = ArtifactCache()
        chain = random_chain(9, seed=21)

        cold_stats = SessionStats()
        cold = AnalysisSession(lump=True, artifacts=cache, stats=cold_stats)
        cold_index = self._request(cold, chain)
        with pytest.warns(RuntimeWarning, match="lumping failed"):
            cold_results = cold.execute()
        assert cold_stats.lump_failures == 1
        assert calls["builds"] == 1
        assert cold_results[cold_index].lumped_states is None

        # Warm plan: the tombstone short-circuits the doomed refinement —
        # no rebuild attempt, no warning, no additional failure count.
        warm_stats = SessionStats()
        warm = AnalysisSession(lump=True, artifacts=cache, stats=warm_stats)
        warm_index = self._request(warm, chain)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            warm_results = warm.execute()
        assert not [w for w in caught if "lumping failed" in str(w.message)]
        assert calls["builds"] == 1
        assert warm_stats.lump_failures == 0
        assert warm_results[warm_index].lumped_states is None

        # Degradation stays exact: the full-chain sweep is the reference.
        reference = AnalysisSession()
        reference_index = self._request(reference, chain)
        np.testing.assert_allclose(
            warm_results[warm_index].squeezed,
            reference.execute()[reference_index].squeezed,
            atol=1e-12,
        )

    def test_successful_builds_are_unaffected(self):
        from repro.analysis.planner import QuotientTombstone, cached_quotient
        from repro.service import ArtifactCache

        cache = ArtifactCache()
        chain = random_chain(9, seed=22)
        target = np.zeros(9)
        target[-1] = 1.0
        first = cached_quotient(chain, [target], cache)
        again = cached_quotient(chain, [target], cache)
        assert not isinstance(first, QuotientTombstone)
        assert again is first  # cache hit returns the identical object


# ---------------------------------------------------------------------------
# interval horizons: 1-ULP grid noise must not spawn duplicate windows
# ---------------------------------------------------------------------------
class TestHorizonMerging:
    def test_merge_helper_clusters_ulp_noise_and_keeps_zeros(self):
        from repro.analysis.executor import _merge_close_horizons

        eps = np.finfo(float).eps
        grids = [
            np.array([0.0, 1.0, 2.0, 3.0]),
            np.array([0.0, 1.0 * (1.0 + eps), 2.0 * (1.0 - eps), 3.5]),
        ]
        representatives, cluster_of = _merge_close_horizons(grids)
        # 0.0, 1.0, 2.0, 3.0, 3.5 — the ULP-offset duplicates collapse.
        assert representatives.shape[0] == 5
        np.testing.assert_allclose(representatives, [0.0, 1.0, 2.0, 3.0, 3.5])
        assert representatives[0] == 0.0  # exact zero survives exactly
        # Every original horizon maps to a representative within tolerance.
        flat = np.concatenate(grids)
        np.testing.assert_allclose(representatives[cluster_of], flat, rtol=1e-12)
        # Genuinely distinct horizons are NOT merged.
        assert 3.0 in representatives and 3.5 in representatives

    def test_bundled_grids_with_float_noise_share_windows(self):
        from repro.service import ArtifactCache

        chain = random_chain(12, seed=19)
        lower = 0.5
        eps = np.finfo(float).eps
        clean = lower + np.array([1.0, 2.0, 3.0, 4.0])
        noisy = clean * (1.0 + eps)  # `times - lower` now differs by ~1 ULP
        cache = ArtifactCache()
        session = AnalysisSession(artifacts=cache)
        indices = [
            session.request(
                chain, grid, kind=MeasureKind.INTERVAL_REACHABILITY,
                target="target", lower=lower,
            )
            for grid in (clean, noisy)
        ]
        results = session.execute()
        # One Fox–Glynn window per *merged* backward horizon (4) plus the
        # single forward window at t = lower; without the tolerant merge
        # the noisy grid would double the backward windows.
        assert cache.stats().kinds["foxglynn"].misses == 5
        np.testing.assert_allclose(
            results[indices[0]].squeezed, results[indices[1]].squeezed, atol=1e-12
        )


# ---------------------------------------------------------------------------
# CLI: paired figures run their family (and its session) exactly once
# ---------------------------------------------------------------------------
class TestCommandLineSessions:
    def test_fig4_fig5_share_one_family_computation(self, capsys, monkeypatch):
        calls = []
        original = exp.figure4_5_survivability_line1

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(exp, "figure4_5_survivability_line1", counting)
        assert main(["fig4", "fig5", "--points", "5", "--no-plot"]) == 0
        assert len(calls) == 1
        out = capsys.readouterr().out
        assert "session:" in out

    def test_fig8_fig9_share_one_family_computation(self, monkeypatch):
        calls = []
        original = exp.figure8_9_survivability_line2

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(exp, "figure8_9_survivability_line2", counting)
        assert main(["fig8", "fig9", "--points", "5", "--no-plot"]) == 0
        assert len(calls) == 1

    def test_lump_flag_reaches_the_session(self, capsys):
        assert main(["fig8", "--points", "5", "--no-plot", "--lump"]) == 0
        out = capsys.readouterr().out
        assert "lumped" in out

    def test_no_batched_flag_plans_per_curve(self, capsys):
        assert main(["fig3", "--points", "5", "--no-plot", "--no-batched"]) == 0
        out = capsys.readouterr().out
        assert "session:" in out
