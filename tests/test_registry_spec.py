"""Tests for `ScenarioSpec.describe()` and `ScenarioRegistry` error paths."""

from __future__ import annotations

import json

import pytest

from repro.arcade.repair import RepairStrategy
from repro.casestudy.facility import LINE2, StrategyConfiguration
from repro.service import ScenarioRegistry, ScenarioSpec, paper_registry


def make_spec(name: str = "custom", **overrides) -> ScenarioSpec:
    parameters = dict(
        name=name,
        measure="survivability",
        lines=(LINE2,),
        strategies=(StrategyConfiguration(RepairStrategy.DEDICATED, 1),),
        disasters=("disaster2",),
        interval_indices=(0, 2),
        horizon=42.0,
        points=11,
        description="a custom spec",
    )
    parameters.update(overrides)
    return ScenarioSpec(**parameters)


class TestDescribe:
    def test_json_round_trip_preserves_every_field(self):
        spec = make_spec()
        document = spec.describe()
        restored = json.loads(json.dumps(document))
        assert restored == document
        assert restored == {
            "name": "custom",
            "measure": "survivability",
            "lines": ["line2"],
            "strategies": ["DED"],
            "disasters": ["disaster2"],
            "interval_indices": [0, 2],
            "horizon": 42.0,
            "points": 11,
            "description": "a custom spec",
        }

    def test_every_paper_spec_is_json_serialisable(self):
        for document in paper_registry(include_optimized=True).describe():
            assert json.loads(json.dumps(document)) == document

    def test_invalid_measure_is_rejected(self):
        with pytest.raises(ValueError, match="unknown measure"):
            make_spec(measure="latency")


class TestRegistryErrors:
    def test_duplicate_name_is_refused(self):
        registry = ScenarioRegistry([make_spec()])
        with pytest.raises(ValueError, match="already registered"):
            registry.register(make_spec(points=99))
        # The original spec survives the refused registration.
        assert registry.get("custom").points == 11

    def test_replace_existing_opts_into_shadowing(self):
        registry = ScenarioRegistry([make_spec()])
        registry.register(make_spec(points=99), replace_existing=True)
        assert registry.get("custom").points == 99
        assert len(registry) == 1

    def test_unknown_name_raises_keyerror_listing_known(self):
        registry = ScenarioRegistry([make_spec()])
        with pytest.raises(KeyError, match="unknown scenario 'ghost'.*custom"):
            registry.get("ghost")
        with pytest.raises(KeyError, match="unknown scenario"):
            registry.expand("ghost")

    def test_contains_names_and_with_points(self):
        registry = ScenarioRegistry([make_spec()])
        assert "custom" in registry and "ghost" not in registry
        assert registry.names == ("custom",)
        coarse = registry.with_points("custom", 5)
        assert coarse.points == 5
        assert registry.get("custom").points == 11  # original untouched
