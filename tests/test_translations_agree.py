"""Cross-validation of the three semantic paths (the paper's Section 2 claim).

The paper states that the PRISM (reactive-modules) translation and the
original I/O-IMC translation "lead to identical results for the constructs
occurring in this case study".  These tests verify exactly that, on models
small enough to build through all three paths:

* direct Arcade state-space generation,
* Arcade → reactive modules → CTMC,
* Arcade → I/O-IMC → compose → hide → maximal progress → CTMC,

by comparing state counts, lumping quotients and computed measures.
"""

import numpy as np
import pytest

from repro.arcade import build_state_space
from repro.arcade.to_iomc import arcade_iomc_ctmc
from repro.arcade.to_modules import arcade_to_modules
from repro.ctmc import (
    lump_ctmc,
    steady_state_distribution,
    time_bounded_reachability,
)
from repro.modules import build_ctmc
from helpers import make_mini_model, make_spare_model


def availability(chain) -> float:
    distribution = steady_state_distribution(chain)
    return float(distribution[chain.label_mask("operational")].sum())


def unreliability_like(chain, t: float) -> float:
    return float(time_bounded_reachability(chain, "down", t))


STRATEGIES = ["dedicated", "fcfs", "fastest_repair_first", "fastest_failure_first", "priority"]


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("crews", [1, 2])
def test_direct_and_modules_translations_agree(strategy, crews):
    model = make_mini_model(strategy, crews)
    direct = build_state_space(model)
    modules = build_ctmc(arcade_to_modules(model))

    assert direct.num_states == modules.num_states
    assert direct.num_transitions == modules.num_transitions
    assert availability(direct.chain) == pytest.approx(availability(modules.chain), abs=1e-10)
    for t in (1.0, 10.0):
        assert unreliability_like(direct.chain, t) == pytest.approx(
            unreliability_like(modules.chain, t), abs=1e-9
        )
    # The cost reward structures agree on the expected steady-state cost rate.
    direct_cost = steady_state_distribution(direct.chain) @ direct.reward_model.reward_structure(
        "cost"
    ).state_rewards
    modules_cost = steady_state_distribution(modules.chain) @ modules.reward_model.reward_structure(
        "cost"
    ).state_rewards
    assert direct_cost == pytest.approx(modules_cost, abs=1e-9)


@pytest.mark.parametrize("strategy", ["dedicated", "fastest_repair_first", "fastest_failure_first"])
def test_direct_and_iomc_translations_agree(strategy):
    model = make_mini_model(strategy)
    direct = build_state_space(model)
    iomc_chain = arcade_iomc_ctmc(model)

    assert iomc_chain.num_states == direct.num_states
    assert availability(iomc_chain) == pytest.approx(availability(direct.chain), abs=1e-10)
    assert unreliability_like(iomc_chain, 5.0) == pytest.approx(
        unreliability_like(direct.chain, 5.0), abs=1e-9
    )


def test_lumping_quotients_are_isomorphic_in_size():
    model = make_mini_model("fastest_repair_first", crews=2)
    direct = build_state_space(model)
    modules = build_ctmc(arcade_to_modules(model))
    direct_quotient, _ = lump_ctmc(direct.chain, respect_initial=True)
    modules_quotient, _ = lump_ctmc(modules.chain, respect_initial=True)
    assert direct_quotient.num_states == modules_quotient.num_states
    assert direct_quotient.num_transitions == modules_quotient.num_transitions


def test_spare_management_translation_agrees():
    model = make_spare_model(dormancy=0.0)
    direct = build_state_space(model)
    modules = build_ctmc(arcade_to_modules(model))
    assert direct.num_states == modules.num_states
    assert availability(direct.chain) == pytest.approx(availability(modules.chain), abs=1e-10)


def test_disaster_initial_state_translation_agrees():
    model = make_mini_model("fastest_repair_first")
    disaster = model.disaster("everything")
    direct = build_state_space(model)
    good_chain = direct.chain_for_disaster(disaster)

    modules = build_ctmc(arcade_to_modules(model, initial_failed=disaster))
    # Recovery probability to "operational" within t must agree.
    for t in (1.0, 5.0, 20.0):
        from_direct = time_bounded_reachability(good_chain, "operational", t)
        from_modules = time_bounded_reachability(modules.chain, "operational", t)
        assert from_direct == pytest.approx(from_modules, abs=1e-9)


def test_nonpreemptive_modules_translation_rejected():
    from repro.arcade.components import ArcadeModelError

    model = make_mini_model("fastest_repair_first", preemptive=False)
    with pytest.raises(ArcadeModelError):
        arcade_to_modules(model)
