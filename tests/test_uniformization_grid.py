"""Grid evaluation by the uniformization engine vs independent per-point evaluation.

The engine (:mod:`repro.ctmc.uniformization`) evaluates a whole time grid in
one vector-power sweep.  These tests pin its results to *independent*
per-point reference implementations that replicate the classic one-sweep-per-
time-point uniformization recursion (the pre-engine behaviour), to <= 1e-9,
including unsorted grids, duplicate entries and ``t = 0``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctmc import CTMC
from repro.ctmc.ctmc import CTMCError
from repro.ctmc.foxglynn import fox_glynn
from repro.ctmc.rewards import cumulative_reward_curve, instantaneous_reward_curve
from repro.ctmc.transient import time_bounded_reachability, transient_distributions
from repro.ctmc.uniformization import (
    UniformizationStats,
    evaluate_grid,
    evaluate_grid_block,
)

EPSILON = 1e-10

#: Deliberately unsorted, with duplicates and t = 0.
GRID = [7.5, 0.0, 1.0, 30.0, 7.5, 0.25, 1.0, 0.0, 15.0]


def random_chain(num_states: int, seed: int, density: float = 0.3) -> CTMC:
    rng = np.random.default_rng(seed)
    rates = rng.random((num_states, num_states)) * (
        rng.random((num_states, num_states)) < density
    )
    rates[0, 1] = 0.5  # make sure the chain has at least one transition
    np.fill_diagonal(rates, 0.0)
    initial = rng.random(num_states)
    return CTMC(rates, initial / initial.sum(), labels={"target": [num_states - 1]})


def reference_transient(
    chain: CTMC, time: float, initial: np.ndarray | None = None
) -> np.ndarray:
    """Per-point uniformization exactly as the seed implemented it."""
    pi0 = chain.initial_distribution if initial is None else np.asarray(initial, float)
    if time == 0.0 or chain.max_exit_rate == 0.0:
        return pi0.copy()
    probabilities, q = chain.uniformized_matrix()
    transposed = probabilities.T.tocsr()
    weights = fox_glynn(q * float(time), EPSILON)
    accumulator = np.zeros(chain.num_states)
    vector = pi0.copy()
    for _ in range(weights.left):
        vector = transposed @ vector
    for k in range(weights.left, weights.right + 1):
        accumulator += weights.weight(k) * vector
        if k < weights.right:
            vector = transposed @ vector
    return accumulator


def reference_cumulative(
    chain: CTMC, rewards: np.ndarray, time: float, initial: np.ndarray | None = None
) -> float:
    """Per-bound accumulated reward exactly as the seed implemented it."""
    pi0 = chain.initial_distribution if initial is None else np.asarray(initial, float)
    if time == 0.0:
        return 0.0
    if chain.max_exit_rate == 0.0:
        return float(time * (pi0 @ rewards))
    probabilities, q = chain.uniformized_matrix()
    transposed = probabilities.T.tocsr()
    weights = fox_glynn(q * float(time), EPSILON)
    cumulative = np.cumsum(weights.weights)
    total = float(cumulative[-1])
    vector = pi0.copy()
    accumulated = 0.0
    for k in range(0, weights.right + 1):
        tail = total if k < weights.left else total - float(cumulative[k - weights.left])
        if tail <= 0.0:
            break
        accumulated += tail * float(vector @ rewards)
        vector = transposed @ vector
    return accumulated / q


@pytest.fixture(params=[3, 12, 40], ids=lambda n: f"{n}states")
def chain(request) -> CTMC:
    return random_chain(request.param, seed=request.param)


class TestTransientGrid:
    def test_matches_per_point_reference(self, chain):
        grid = transient_distributions(chain, GRID, epsilon=EPSILON)
        for row, time in enumerate(GRID):
            expected = reference_transient(chain, time)
            assert np.max(np.abs(grid[row] - expected)) <= 1e-9

    def test_duplicate_times_give_identical_rows(self, chain):
        grid = transient_distributions(chain, GRID, epsilon=EPSILON)
        assert np.array_equal(grid[0], grid[4])  # both t = 7.5
        assert np.array_equal(grid[2], grid[6])  # both t = 1.0

    def test_time_zero_rows_are_initial(self, chain):
        grid = transient_distributions(chain, GRID, epsilon=EPSILON)
        assert grid[1] == pytest.approx(chain.initial_distribution, abs=1e-12)
        assert grid[7] == pytest.approx(chain.initial_distribution, abs=1e-12)

    def test_custom_initial_distribution(self, chain):
        initial = np.zeros(chain.num_states)
        initial[-1] = 1.0
        grid = transient_distributions(chain, GRID, initial, epsilon=EPSILON)
        for row, time in enumerate(GRID):
            expected = reference_transient(chain, time, initial)
            assert np.max(np.abs(grid[row] - expected)) <= 1e-9

    def test_rows_are_distributions(self, chain):
        grid = transient_distributions(chain, GRID, epsilon=EPSILON)
        assert grid.sum(axis=1) == pytest.approx(np.ones(len(GRID)), abs=1e-8)


class TestReachabilityGrid:
    def test_matches_per_point_evaluation(self, chain):
        curve = time_bounded_reachability(chain, "target", GRID, epsilon=EPSILON)
        for index, time in enumerate(GRID):
            single = time_bounded_reachability(chain, "target", float(time), epsilon=EPSILON)
            assert abs(curve[index] - single) <= 1e-9


class TestRewardGrids:
    def test_cumulative_matches_per_point_reference(self, chain):
        rewards = np.linspace(0.0, 3.0, chain.num_states)
        curve = cumulative_reward_curve((chain, rewards), GRID, epsilon=EPSILON)
        for index, time in enumerate(GRID):
            expected = reference_cumulative(chain, rewards, time)
            assert abs(curve[index] - expected) <= 1e-9

    def test_cumulative_at_zero_is_zero(self, chain):
        rewards = np.ones(chain.num_states)
        curve = cumulative_reward_curve((chain, rewards), [0.0, 0.0], epsilon=EPSILON)
        assert curve == pytest.approx([0.0, 0.0], abs=0.0)

    def test_instantaneous_matches_distribution_dot(self, chain):
        rewards = np.linspace(1.0, 2.0, chain.num_states)
        curve = instantaneous_reward_curve((chain, rewards), GRID, epsilon=EPSILON)
        for index, time in enumerate(GRID):
            expected = float(reference_transient(chain, time) @ rewards)
            assert abs(curve[index] - expected) <= 1e-9


class TestEngineBehaviour:
    def test_single_sweep_matvec_count(self, chain):
        """The grid shares one sweep: matvecs == largest right truncation point."""
        stats = UniformizationStats()
        _, q = chain.uniformized_matrix()
        evaluate_grid(chain, GRID, epsilon=EPSILON, stats=stats)
        expected = max(fox_glynn(q * t, EPSILON).right for t in GRID if t > 0.0)
        assert stats.matvecs == expected
        assert stats.sweeps == 1
        per_point = sum(fox_glynn(q * t, EPSILON).right for t in GRID if t > 0.0)
        assert per_point > stats.matvecs

    def test_empty_grid(self, chain):
        result = evaluate_grid(chain, [], epsilon=EPSILON)
        assert result.distributions.shape == (0, chain.num_states)
        assert result.matvecs == 0

    def test_transitionless_chain(self):
        chain = CTMC(np.zeros((3, 3)), {1: 1.0})
        rewards = np.array([1.0, 2.0, 3.0])
        result = evaluate_grid(
            chain, [0.0, 4.0], rewards=rewards, instantaneous=True, cumulative=True
        )
        assert result.distributions == pytest.approx(np.array([[0, 1, 0], [0, 1, 0]]))
        assert result.instantaneous == pytest.approx([2.0, 2.0])
        assert result.cumulative == pytest.approx([0.0, 8.0])

    def test_negative_time_rejected(self, chain):
        with pytest.raises(CTMCError):
            evaluate_grid(chain, [1.0, -0.5])

    def test_non_finite_time_rejected(self, chain):
        # NaN compares false against every bound, so without an explicit
        # check it would silently produce an all-zero "distribution" row.
        with pytest.raises(CTMCError):
            evaluate_grid(chain, [float("nan"), 1.0])
        with pytest.raises(CTMCError):
            evaluate_grid(chain, [float("inf")])

    def test_reward_outputs_require_rewards(self, chain):
        with pytest.raises(CTMCError):
            evaluate_grid(chain, [1.0], cumulative=True)

    def test_wrong_initial_distribution_length(self, chain):
        with pytest.raises(CTMCError):
            evaluate_grid(chain, [1.0], initial_distribution=np.ones(chain.num_states + 1))


class TestInitialBlockBatching:
    """A 2-D initial block must reproduce the per-initial results exactly
    while sharing a single operator traversal per vector power."""

    def _initial_block(self, chain: CTMC, rows: int = 3) -> np.ndarray:
        rng = np.random.default_rng(chain.num_states)
        block = rng.random((rows, chain.num_states))
        return block / block.sum(axis=1, keepdims=True)

    def test_block_matches_per_initial_rows(self, chain):
        block = self._initial_block(chain)
        rewards = np.linspace(0.0, 2.0, chain.num_states)
        batched = evaluate_grid(
            chain, GRID, initial_distribution=block, rewards=rewards,
            instantaneous=True, cumulative=True, epsilon=EPSILON,
        )
        assert batched.distributions.shape == (3, len(GRID), chain.num_states)
        assert batched.instantaneous.shape == (3, len(GRID))
        assert batched.cumulative.shape == (3, len(GRID))
        for row in range(block.shape[0]):
            single = evaluate_grid(
                chain, GRID, initial_distribution=block[row], rewards=rewards,
                instantaneous=True, cumulative=True, epsilon=EPSILON,
            )
            np.testing.assert_allclose(
                batched.distributions[row], single.distributions, atol=1e-12
            )
            np.testing.assert_allclose(
                batched.instantaneous[row], single.instantaneous, atol=1e-12
            )
            np.testing.assert_allclose(
                batched.cumulative[row], single.cumulative, atol=1e-12
            )

    def test_block_shares_the_operator_traversal(self, chain):
        block = self._initial_block(chain, rows=4)
        stats = UniformizationStats()
        evaluate_grid(chain, GRID, initial_distribution=block, epsilon=EPSILON, stats=stats)
        _, q = chain.uniformized_matrix()
        expected_applies = max(fox_glynn(q * t, EPSILON).right for t in GRID if t > 0.0)
        assert stats.applies == expected_applies
        assert stats.matvecs == expected_applies * 4
        assert stats.sweeps == 1

    def test_reward_matrix_columns(self, chain):
        block = self._initial_block(chain, rows=2)
        rng = np.random.default_rng(7)
        reward_matrix = rng.random((chain.num_states, 3))
        batched = evaluate_grid_block(
            chain, GRID, block, reward_matrix,
            instantaneous=True, cumulative=True, epsilon=EPSILON,
        )
        assert batched.instantaneous.shape == (2, len(GRID), 3)
        for column in range(3):
            single = evaluate_grid_block(
                chain, GRID, block, reward_matrix[:, column],
                instantaneous=True, cumulative=True, epsilon=EPSILON,
            )
            np.testing.assert_allclose(
                batched.instantaneous[:, :, column],
                single.instantaneous[:, :, 0],
                atol=1e-12,
            )
            np.testing.assert_allclose(
                batched.cumulative[:, :, column],
                single.cumulative[:, :, 0],
                atol=1e-12,
            )

    def test_block_on_transitionless_chain(self):
        chain = CTMC(np.zeros((3, 3)), {1: 1.0})
        block = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
        rewards = np.array([1.0, 2.0, 3.0])
        result = evaluate_grid(
            chain, [0.0, 4.0], initial_distribution=block, rewards=rewards,
            instantaneous=True, cumulative=True,
        )
        np.testing.assert_allclose(result.instantaneous, [[1.0, 1.0], [3.0, 3.0]])
        np.testing.assert_allclose(result.cumulative, [[0.0, 4.0], [0.0, 12.0]])

    def test_malformed_blocks_rejected(self, chain):
        with pytest.raises(CTMCError):
            evaluate_grid(
                chain, [1.0],
                initial_distribution=np.ones((2, chain.num_states + 1)),
            )
        with pytest.raises(CTMCError):
            evaluate_grid_block(chain, [1.0], np.ones((0, chain.num_states))[None])
