"""Tests for the CTMC data structure and the incremental builder."""

import numpy as np
import pytest
from scipy import sparse

from repro.ctmc import CTMC, MarkovRewardModel, RewardStructure
from repro.ctmc.ctmc import CTMCBuilder, CTMCError


class TestConstruction:
    def test_basic_properties(self, two_state_chain):
        assert two_state_chain.num_states == 2
        assert two_state_chain.num_transitions == 2
        assert two_state_chain.max_exit_rate == pytest.approx(0.5)
        assert two_state_chain.exit_rates == pytest.approx([0.01, 0.5])

    def test_diagonal_entries_are_dropped(self):
        rates = np.array([[5.0, 1.0], [2.0, 7.0]])
        chain = CTMC(rates, {0: 1.0})
        assert chain.num_transitions == 2
        assert chain.exit_rates == pytest.approx([1.0, 2.0])

    def test_non_square_rejected(self):
        with pytest.raises(CTMCError):
            CTMC(np.ones((2, 3)), {0: 1.0})

    def test_negative_rate_rejected(self):
        with pytest.raises(CTMCError):
            CTMC(np.array([[0.0, -1.0], [0.0, 0.0]]), {0: 1.0})

    def test_initial_distribution_validation(self):
        rates = np.zeros((2, 2))
        with pytest.raises(CTMCError):
            CTMC(rates, {5: 1.0})
        with pytest.raises(CTMCError):
            CTMC(rates, [0.0, 0.0])
        with pytest.raises(CTMCError):
            CTMC(rates, [0.5, -0.5])

    def test_initial_distribution_is_normalised(self):
        chain = CTMC(np.zeros((2, 2)), [2.0, 2.0])
        assert chain.initial_distribution == pytest.approx([0.5, 0.5])

    def test_generator_rows_sum_to_zero(self, two_state_chain):
        generator = two_state_chain.generator_matrix()
        assert np.asarray(generator.sum(axis=1)).ravel() == pytest.approx([0.0, 0.0])

    def test_uniformized_matrix_is_stochastic(self, two_state_chain):
        matrix, rate = two_state_chain.uniformized_matrix()
        assert rate == pytest.approx(0.5)
        assert np.asarray(matrix.sum(axis=1)).ravel() == pytest.approx([1.0, 1.0])

    def test_uniformization_rate_too_small_rejected(self, two_state_chain):
        with pytest.raises(CTMCError):
            two_state_chain.uniformized_matrix(rate=0.1)


class TestLabels:
    def test_label_masks(self, two_state_chain):
        assert list(two_state_chain.label_states("up")) == [0]
        assert list(two_state_chain.label_states("down")) == [1]
        assert two_state_chain.labels_of_state(0) == {"up"}

    def test_unknown_label(self, two_state_chain):
        with pytest.raises(CTMCError):
            two_state_chain.label_mask("nonexistent")

    def test_add_label_with_boolean_mask(self, two_state_chain):
        two_state_chain.add_label("everything", np.array([True, True]))
        assert two_state_chain.label_mask("everything").sum() == 2

    def test_label_index_out_of_range(self, two_state_chain):
        with pytest.raises(CTMCError):
            two_state_chain.add_label("bad", [7])


class TestTransformations:
    def test_make_absorbing(self, two_state_chain):
        absorbing = two_state_chain.make_absorbing([1])
        assert absorbing.num_transitions == 1
        assert absorbing.exit_rates[1] == 0.0
        # Labels survive the transformation.
        assert list(absorbing.label_states("down")) == [1]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_make_absorbing_matches_per_row_reference(self, seed):
        """The vectorized CSR row masking agrees with per-row clearing."""
        rng = np.random.default_rng(seed)
        num_states = int(rng.integers(2, 30))
        rates = rng.random((num_states, num_states)) * (
            rng.random((num_states, num_states)) < 0.25
        )
        np.fill_diagonal(rates, 0.0)
        chain = CTMC(rates, np.full(num_states, 1.0 / num_states))
        absorb = rng.random(num_states) < 0.4

        reference = chain.rate_matrix.tolil(copy=True)
        for state in np.flatnonzero(absorb):
            reference.rows[state] = []
            reference.data[state] = []

        for states in (absorb, np.flatnonzero(absorb)):
            transformed = chain.make_absorbing(states)
            assert (transformed.rate_matrix != reference.tocsr()).nnz == 0
            assert transformed.exit_rates[absorb] == pytest.approx(0.0)
            assert transformed.exit_rates[~absorb] == pytest.approx(
                chain.exit_rates[~absorb]
            )

    def test_make_absorbing_no_states(self, two_state_chain):
        unchanged = two_state_chain.make_absorbing([])
        assert (unchanged.rate_matrix != two_state_chain.rate_matrix).nnz == 0

    def test_uniformized_matrix_cached_copies_are_mutation_safe(self, two_state_chain):
        first, q1 = two_state_chain.uniformized_matrix()
        snapshot = first.toarray().copy()
        first.data[:] = -7.0  # a hostile caller scribbles over the result
        second, q2 = two_state_chain.uniformized_matrix()
        assert q1 == q2
        assert second.toarray() == pytest.approx(snapshot)

    def test_uniformized_matrix_cached_per_rate(self, two_state_chain):
        default, _ = two_state_chain.uniformized_matrix()
        larger, q = two_state_chain.uniformized_matrix(rate=2.0)
        assert q == 2.0
        assert np.asarray(larger.sum(axis=1)).ravel() == pytest.approx([1.0, 1.0])
        again, _ = two_state_chain.uniformized_matrix(rate=2.0)
        assert again.toarray() == pytest.approx(larger.toarray())
        assert default.toarray() != pytest.approx(larger.toarray())

    def test_uniformized_transpose_matches_matrix(self, two_state_chain):
        matrix, q_matrix = two_state_chain.uniformized_matrix()
        transposed, q_transposed = two_state_chain.uniformized_transpose()
        assert q_matrix == q_transposed
        assert transposed.toarray() == pytest.approx(matrix.T.toarray())
        transposed.data[:] = -1.0  # copies are mutation-safe here too
        again, _ = two_state_chain.uniformized_transpose()
        assert again.toarray() == pytest.approx(matrix.T.toarray())

    def test_with_initial_distribution(self, two_state_chain):
        moved = two_state_chain.with_initial_distribution({1: 1.0})
        assert moved.initial_state == 1
        assert two_state_chain.initial_state == 0

    def test_successors(self, two_state_chain):
        assert two_state_chain.successors(0) == [(1, 0.01)]


class TestRewards:
    def test_reward_structure_validation(self, two_state_chain):
        structure = RewardStructure("cost", np.array([0.0, 3.0]))
        model = MarkovRewardModel(two_state_chain, structure)
        assert model.reward_names == ("cost",)
        assert model.reward_structure().name == "cost"
        assert model.reward_structure("cost").expected_rate(np.array([0.5, 0.5])) == 1.5

    def test_mismatched_size_rejected(self, two_state_chain):
        with pytest.raises(CTMCError):
            MarkovRewardModel(two_state_chain, RewardStructure("cost", np.zeros(3)))

    def test_unknown_reward_name(self, two_state_chain):
        model = MarkovRewardModel(two_state_chain, RewardStructure("cost", np.zeros(2)))
        with pytest.raises(CTMCError):
            model.reward_structure("other")

    def test_multiple_structures_need_a_name(self, two_state_chain):
        model = MarkovRewardModel(
            two_state_chain,
            [RewardStructure("a", np.zeros(2)), RewardStructure("b", np.ones(2))],
        )
        with pytest.raises(CTMCError):
            model.reward_structure()
        assert model.reward_structure("b").state_rewards[0] == 1.0


class TestBuilder:
    def test_builder_accumulates_parallel_transitions(self):
        builder = CTMCBuilder()
        a = builder.add_state("a")
        b = builder.add_state("b")
        builder.add_transition(a, b, 1.0)
        builder.add_transition(a, b, 2.0)
        builder.add_label("start", a)
        chain = builder.build({a: 1.0})
        assert chain.num_states == 2
        assert chain.rate_matrix[a, b] == pytest.approx(3.0)
        assert chain.describe_state(0) == "a"
        assert list(chain.label_states("start")) == [0]

    def test_builder_rejects_negative_rate(self):
        builder = CTMCBuilder()
        a = builder.add_state()
        b = builder.add_state()
        with pytest.raises(CTMCError):
            builder.add_transition(a, b, -1.0)

    def test_zero_rate_and_self_loop_ignored(self):
        builder = CTMCBuilder()
        a = builder.add_state()
        builder.add_transition(a, a, 5.0)
        builder.add_transition(a, a, 0.0)
        chain = builder.build({a: 1.0})
        assert chain.num_transitions == 0
