"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arcade import ArcadeModel, build_state_space
from repro.ctmc import CTMC

from helpers import make_mini_model, make_spare_model


@pytest.fixture
def two_state_chain() -> CTMC:
    """A single repairable component: up (state 0) <-> down (state 1)."""
    rates = np.array([[0.0, 0.01], [0.5, 0.0]])
    return CTMC(rates, {0: 1.0}, labels={"up": [0], "down": [1]})


@pytest.fixture
def absorbing_chain() -> CTMC:
    """A 3-state chain with an absorbing failure state (no repair)."""
    rates = np.array(
        [
            [0.0, 0.02, 0.0],
            [0.0, 0.0, 0.1],
            [0.0, 0.0, 0.0],
        ]
    )
    return CTMC(rates, {0: 1.0}, labels={"working": [0, 1], "failed": [2]})


@pytest.fixture
def mini_model() -> ArcadeModel:
    return make_mini_model()


@pytest.fixture
def mini_space(mini_model):
    return build_state_space(mini_model)


@pytest.fixture
def spare_model() -> ArcadeModel:
    return make_spare_model()
