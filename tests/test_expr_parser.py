"""Tests for the expression parser, including property-based round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import Const, ExpressionParseError, Var, parse_expression
from repro.expr.nodes import BinaryOp, Expression, Ite, UnaryOp


class TestParser:
    @pytest.mark.parametrize(
        "source, env, expected",
        [
            ("1 + 2 * 3", {}, 7),
            ("(1 + 2) * 3", {}, 9),
            ("2 - 1 - 1", {}, 0),
            ("true & false | true", {}, True),
            ("!false & true", {}, True),
            ("x >= 3 & y < 2", {"x": 4, "y": 1}, True),
            ("x = 1 => y = 2", {"x": 0, "y": 5}, True),
            ("min(3, x, 7)", {"x": 5}, 3),
            ("max(3, x, 7)", {"x": 5}, 7),
            ("x ? 1 : 0", {"x": True}, 1),
            ("-x + 5", {"x": 2}, 3),
            ("1.5e2", {}, 150.0),
        ],
    )
    def test_evaluation(self, source, env, expected):
        assert parse_expression(source).evaluate(env) == expected

    def test_precedence_of_comparison_over_boolean(self):
        expression = parse_expression("a + 1 > b & c")
        assert expression.evaluate({"a": 3, "b": 1, "c": True}) is True

    def test_implication_is_right_associative(self):
        expression = parse_expression("false => false => false")
        # Parsed as false => (false => false) which is true.
        assert expression.evaluate({}) is True

    @pytest.mark.parametrize(
        "source",
        ["", "1 +", "(1", "foo bar", "min(1)", "1 ? 2", "@", "x >="],
    )
    def test_errors(self, source):
        with pytest.raises(ExpressionParseError):
            parse_expression(source)


# ---------------------------------------------------------------------------
# property-based: printing and reparsing preserves semantics
# ---------------------------------------------------------------------------
_names = st.sampled_from(["x", "y", "z"])


def _expressions(depth: int = 3) -> st.SearchStrategy[Expression]:
    leaves = st.one_of(
        st.integers(min_value=0, max_value=20).map(Const),
        st.booleans().map(Const),
        _names.map(Var),
    )

    def extend(children):
        numeric_ops = st.sampled_from(["+", "-", "*"])
        comparisons = st.sampled_from(["<", "<=", ">", ">=", "=", "!="])
        return st.one_of(
            st.tuples(numeric_ops, children, children).map(lambda t: BinaryOp(*t)),
            st.tuples(comparisons, children, children).map(lambda t: BinaryOp(*t)),
            children.map(lambda e: UnaryOp("-", e)),
        )

    return st.recursive(leaves, extend, max_leaves=8)


@given(expression=_expressions(), x=st.integers(-5, 5), y=st.integers(-5, 5), z=st.integers(-5, 5))
@settings(max_examples=200, deadline=None)
def test_print_parse_round_trip(expression, x, y, z):
    """str() output is parseable and evaluates to the same value."""
    env = {"x": x, "y": y, "z": z}
    try:
        expected = expression.evaluate(env)
    except TypeError:
        # Randomly generated trees may mix booleans into arithmetic; the
        # evaluator rejects those, and so may the reparsed tree - skip them.
        return
    reparsed = parse_expression(str(expression))
    assert reparsed.evaluate(env) == expected
