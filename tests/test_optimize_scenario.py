"""Tests for the OPTIMIZED scenario family and the optimize CLI.

The family is opt-in (``paper_registry(include_optimized=True)``) because
its expansion runs the rollout optimizer; these tests check the expansion
contract (fixed curves + ``"OPT"``, memoized optimizer runs, optimized
dominates), the ``/metrics`` hookup and the ``python -m repro optimize``
entry point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import AnalysisSession
from repro.optimize import global_optimizer_stats
from repro.optimize.scenario import clear_cache, optimized_policies
from repro.service import ArtifactCache, ScenarioService, paper_registry


@pytest.fixture(autouse=True)
def fresh_optimizer_cache():
    clear_cache()
    yield
    clear_cache()


class TestRegistryIntegration:
    def test_optimized_family_is_opt_in(self):
        assert "fig8_9_optimized" not in paper_registry().names
        registry = paper_registry(include_optimized=True)
        assert "fig8_9_optimized" in registry.names
        assert "fig11_optimized" in registry.names
        described = {spec["name"]: spec for spec in registry.describe()}
        assert described["fig8_9_optimized"]["measure"] == "optimized_survivability"
        assert (
            described["fig11_optimized"]["measure"] == "optimized_accumulated_cost"
        )

    def test_expansion_emits_fixed_curves_plus_opt(self):
        registry = paper_registry(include_optimized=True)
        requests = registry.expand("fig8_9_optimized", points=9)
        labels = [request.tag[-1] for request in requests]
        assert labels == ["DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2", "OPT"]
        for request in requests:
            assert request.tag[0] == "fig8_9_optimized"
            assert len(request.times) == 9

    def test_optimized_curve_dominates_fixed_curves(self):
        registry = paper_registry(include_optimized=True)
        requests = registry.expand("fig8_9_optimized", points=9)
        session = AnalysisSession()
        indices = [session.add(request) for request in requests]
        results = session.execute()
        finals = {
            request.tag[-1]: float(results[index].squeezed[-1])
            for request, index in zip(requests, indices)
        }
        opt = finals.pop("OPT")
        assert opt >= max(finals.values()) - 1e-9

    def test_optimizer_runs_are_memoized_per_cell(self):
        registry = paper_registry(include_optimized=True)
        registry.expand("fig8_9_optimized", points=9)
        ctmdp, fixed, result = optimized_policies(
            "line2", "survivability", "disaster2", 0, 24.0
        )
        again = optimized_policies("line2", "survivability", "disaster2", 0, 24.0)
        assert again[0] is ctmdp and again[2] is result
        assert set(fixed) == {"DED", "FRF-1", "FRF-2", "FFF-1", "FFF-2"}


class TestMetricsHookup:
    def test_service_metrics_include_optimizer_counters(self):
        service = ScenarioService(artifacts=ArtifactCache())
        text = service.metrics_text()
        assert "# TYPE repro_optimizer_policy_evaluations_total counter" in text
        assert any(
            line.startswith("repro_optimizer_coalesced_sweeps_total ")
            for line in text.splitlines()
        )


class TestOptimizeCLI:
    def test_main_dispatches_optimize(self, capsys):
        from repro.cli import main

        code = main(
            [
                "optimize",
                "--line",
                "2",
                "--objective",
                "availability",
                "--crews",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "OPT" in out
        assert "policy iteration: converged" in out

    def test_rollout_objective_and_metrics_flag(self, capsys):
        from repro.optimize.cli import optimize_main

        before = global_optimizer_stats().rollout_iterations
        code = optimize_main(
            [
                "--line",
                "2",
                "--objective",
                "survivability",
                "--points",
                "9",
                "--metrics",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rollout:" in out
        assert "repro_optimizer_rollout_iterations_total" in out
        assert global_optimizer_stats().rollout_iterations > before

    def test_crew_limit_below_one_exits_2(self, capsys):
        from repro.optimize.cli import optimize_main

        code = optimize_main(["--line", "2", "--crews", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().out
