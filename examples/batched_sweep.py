"""A whole figure family as ONE batched analysis session.

This example reproduces the curve family behind Figures 8 and 9 of the
paper — the recovery of Line 2 after Disaster 2, for every repair strategy
and two service intervals — but instead of calling ``survivability_curve``
once per curve (the deprecated per-call idiom, see
``survivability_analysis.py``), it declares every curve as a
:class:`repro.analysis.MeasureRequest` and lets one
:class:`repro.analysis.AnalysisSession` plan and execute them together:

* requests that agree on (chain, uniformization rate, grid) share a single
  uniformization sweep — here, both disasters of a strategy ride one sweep
  as a batched initial-distribution block,
* with ``--lump``, every group is first reduced by ordinary lumpability
  seeded with exactly the target sets the requests observe; the sweep then
  runs on a quotient with orders of magnitude fewer transitions,
* the session's work counters (groups, sweeps, matvecs, lumping
  compression) are printed at the end — the same line the CLI prints.

.. note::
   For anything beyond a one-shot script, the per-call *and* the
   one-session idiom shown here are superseded by the **scenario service**
   (:mod:`repro.service`, see ``scenario_service.py`` next door): it
   coalesces requests across many concurrent clients, runs independent
   groups on a worker pool, and keeps transforms/quotients/Fox–Glynn
   windows in a process-wide artifact cache so repeated sweeps recompute
   nothing.  A standalone ``AnalysisSession`` builds its artifacts from
   scratch every time.

Run with::

    python examples/batched_sweep.py [--horizon HOURS] [--points N] [--lump]
"""

import argparse

import numpy as np

from repro.analysis import AnalysisSession
from repro.arcade import build_state_space
from repro.casestudy import DISASTER_1, DISASTER_2, PAPER_STRATEGIES, build_line2
from repro.casestudy.reporting import ascii_plot
from repro.measures import service_intervals, survivability_request


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=float, default=100.0, help="time horizon [h]")
    parser.add_argument("--points", type=int, default=51, help="grid points")
    parser.add_argument(
        "--lump", action="store_true", help="solve each group on its lumped quotient"
    )
    args = parser.parse_args()

    times = np.linspace(0.0, args.horizon, args.points)
    spaces = {
        configuration.label: build_state_space(
            build_line2(configuration.strategy.value, configuration.crews)
        )
        for configuration in PAPER_STRATEGIES
    }
    intervals = service_intervals(next(iter(spaces.values())))

    # Declare the whole family first ...
    session = AnalysisSession(lump=args.lump)
    indices: dict[tuple[str, str, int], int] = {}
    for label, space in spaces.items():
        for disaster in (DISASTER_1, DISASTER_2):
            for interval_index in (0, len(intervals) - 2):
                threshold = intervals[interval_index][0]
                indices[(label, disaster, interval_index)] = session.add(
                    survivability_request(
                        space, disaster, threshold, times,
                        tag=(label, disaster, interval_index),
                    )
                )

    # ... then execute it: one sweep per (chain, rate, grid) group.  The two
    # disasters of each (strategy, interval) pair share a sweep because they
    # differ only in the initial distribution.
    results = session.execute()

    for disaster in (DISASTER_1, DISASTER_2):
        for interval_index in (0, len(intervals) - 2):
            series = {
                label: results[indices[(label, disaster, interval_index)]].squeezed
                for label in spaces
            }
            print(
                ascii_plot(
                    times,
                    series,
                    width=68,
                    height=12,
                    title=(
                        f"P(recover to interval X{interval_index + 1} within t) "
                        f"after {disaster}"
                    ),
                    y_label="P(recovered)",
                )
            )
            print()

    print(f"[{session.stats.summary()}]")
    print(
        f"(the {session.stats.requests} curves shared {session.stats.sweeps} sweeps; "
        "per-call evaluation would have swept once per curve)"
    )


if __name__ == "__main__":
    main()
