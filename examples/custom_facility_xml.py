"""Define a custom facility, round-trip it through XML, and cross-check paths.

This example shows the "openness" part of the Arcade tool chain: the model
is written to the XML input format, read back, and analysed.  It also
demonstrates the agreement of the three semantic paths implemented by this
library — direct state-space generation, the reactive-modules (PRISM)
translation and the I/O-IMC translation — on a small custom model, plus a
Monte-Carlo sanity check.

Run with::

    python examples/custom_facility_xml.py
"""

import tempfile
from pathlib import Path

from repro.arcade import (
    ArcadeModel,
    BasicComponent,
    BasicEvent,
    FaultTree,
    KOfN,
    Or,
    RepairUnit,
    build_state_space,
    read_model,
    write_model,
)
from repro.arcade.model import Disaster
from repro.arcade.to_iomc import arcade_iomc_ctmc
from repro.arcade.to_modules import arcade_to_modules
from repro.ctmc import steady_state_distribution
from repro.measures import steady_state_availability, survivability
from repro.modules import build_ctmc
from repro.sim import estimate_availability


def build_custom_model() -> ArcadeModel:
    """A small pumping station: two parallel feed pumps and a filtration skid."""
    components = (
        BasicComponent("feed_pump1", mttf=800.0, mttr=6.0, component_class="pump", priority=1),
        BasicComponent("feed_pump2", mttf=800.0, mttr=6.0, component_class="pump", priority=1),
        BasicComponent("filter_skid", mttf=1500.0, mttr=24.0, component_class="filter", priority=2),
    )
    repair = RepairUnit(
        "maintenance",
        strategy="priority",
        components=tuple(component.name for component in components),
        crews=1,
    )
    fault_tree = FaultTree(
        Or(
            KOfN(2, [BasicEvent("feed_pump1"), BasicEvent("feed_pump2")]),
            BasicEvent("filter_skid"),
        )
    )
    disaster = Disaster("blackout", ("feed_pump1", "feed_pump2", "filter_skid"))
    return ArcadeModel(
        name="pumping_station",
        components=components,
        repair_units=(repair,),
        fault_tree=fault_tree,
        disasters=(disaster,),
    )


def main() -> None:
    model = build_custom_model()

    # --- XML round trip --------------------------------------------------
    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "pumping_station.xml"
        write_model(model, path)
        print(f"wrote {path.name} ({path.stat().st_size} bytes)")
        restored = read_model(path)
    print(f"round-tripped model has {len(restored.components)} components, "
          f"{len(restored.repair_units)} repair unit(s)\n")

    # --- three semantic paths --------------------------------------------
    direct = build_state_space(restored)
    modules_result = build_ctmc(arcade_to_modules(restored))
    iomc_chain = arcade_iomc_ctmc(restored)

    def availability_of(chain) -> float:
        distribution = steady_state_distribution(chain)
        return float(distribution[chain.label_mask("operational")].sum())

    print("steady-state availability by semantic path:")
    print(f"  direct state space      : {steady_state_availability(direct):.8f}")
    print(f"  reactive modules (PRISM): {availability_of(modules_result.chain):.8f}")
    print(f"  I/O-IMC composition     : {availability_of(iomc_chain):.8f}")

    interval = estimate_availability(restored, horizon=50_000.0, runs=20, seed=7)
    print(f"  Monte-Carlo estimate    : {interval}\n")

    # --- survivability of the custom disaster -----------------------------
    # Per-call idiom (deprecated for curve families): each call below builds
    # a one-request analysis session.  To evaluate many thresholds/disasters
    # in shared sweeps, collect survivability_request objects into one
    # repro.analysis.AnalysisSession instead (examples/batched_sweep.py).
    for hours in (12.0, 24.0, 48.0):
        probability = survivability(direct, "blackout", 1.0, hours)
        print(f"P(full service restored within {hours:>4.0f} h after the blackout) = {probability:.4f}")


if __name__ == "__main__":
    main()
