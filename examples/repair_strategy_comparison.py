"""Compare repair strategies for the water-treatment facility (Tables 1 and 2).

This example reproduces the paper's core comparison: for each repair
strategy (dedicated, fastest-repair-first and fastest-failure-first with one
or two crews) it reports the state-space size and the steady-state
availability of both process lines, and combines the lines into the overall
facility availability.

All availabilities are submitted to **one** :class:`repro.analysis.AnalysisSession`
so the whole table shares cached BSCC decompositions, stationary solves and
LU factorizations; the session's work counters are printed at the end.

Run with::

    python examples/repair_strategy_comparison.py [--fast]

``--fast`` restricts the sweep to Line 2 (smaller state spaces).
"""

import argparse

from repro.analysis import AnalysisSession
from repro.arcade import build_state_space
from repro.casestudy import PAPER_STRATEGIES, build_line1, build_line2
from repro.casestudy.reporting import format_table
from repro.measures import combined_availability, steady_state_availability_request


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="analyse Line 2 only")
    args = parser.parse_args()

    # Build every state space, queue every availability on one session, and
    # only then execute: the session groups the requests and reuses cached
    # solver artifacts across strategies.
    session = AnalysisSession()
    spaces: dict[tuple[str, str], object] = {}
    indices: dict[tuple[str, str], int] = {}
    lines = ("line2",) if args.fast else ("line1", "line2")
    builders = {"line1": build_line1, "line2": build_line2}
    for configuration in PAPER_STRATEGIES:
        for line in lines:
            space = build_state_space(
                builders[line](configuration.strategy, configuration.crews)
            )
            key = (configuration.label, line)
            spaces[key] = space
            indices[key] = session.add(
                steady_state_availability_request(space, tag=key)
            )
    results = session.execute()

    def availability(label: str, line: str) -> float:
        return float(results[indices[(label, line)]].squeezed[0])

    rows = []
    for configuration in PAPER_STRATEGIES:
        label = configuration.label
        line2 = spaces[(label, "line2")]
        availability2 = availability(label, "line2")
        if args.fast:
            rows.append((label, line2.num_states, line2.num_transitions, availability2))
            continue
        line1 = spaces[(label, "line1")]
        availability1 = availability(label, "line1")
        rows.append(
            (
                label,
                line1.num_states,
                line1.num_transitions,
                line2.num_states,
                line2.num_transitions,
                availability1,
                availability2,
                combined_availability([availability1, availability2]),
            )
        )

    if args.fast:
        headers = ("strategy", "line2 states", "line2 transitions", "line2 availability")
        title = "Repair strategies, Line 2 only"
    else:
        headers = (
            "strategy",
            "line1 states",
            "line1 transitions",
            "line2 states",
            "line2 transitions",
            "line1 availability",
            "line2 availability",
            "combined",
        )
        title = "Repair strategies for the water-treatment facility (Tables 1 and 2)"
    print(format_table(headers, rows, title=title))

    best = max(rows, key=lambda row: row[-1])
    print(
        f"\nHighest availability: {best[0]} — but note (as the paper does) that dedicated "
        "repair needs one crew per component; among the realistic strategies the two-crew "
        "variants come within a fraction of a percent of it."
    )
    print(f"\n[{session.stats.summary()}]")


if __name__ == "__main__":
    main()
