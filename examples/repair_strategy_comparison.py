"""Compare repair strategies for the water-treatment facility (Tables 1 and 2).

This example reproduces the paper's core comparison: for each repair
strategy (dedicated, fastest-repair-first and fastest-failure-first with one
or two crews) it reports the state-space size and the steady-state
availability of both process lines, and combines the lines into the overall
facility availability.

Run with::

    python examples/repair_strategy_comparison.py [--fast]

``--fast`` restricts the sweep to Line 2 (smaller state spaces).
"""

import argparse

from repro.arcade import build_state_space
from repro.casestudy import PAPER_STRATEGIES, build_line1, build_line2
from repro.casestudy.reporting import format_table
from repro.measures import combined_availability, steady_state_availability


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="analyse Line 2 only")
    args = parser.parse_args()

    rows = []
    for configuration in PAPER_STRATEGIES:
        line2 = build_state_space(build_line2(configuration.strategy, configuration.crews))
        availability2 = steady_state_availability(line2)
        if args.fast:
            rows.append(
                (configuration.label, line2.num_states, line2.num_transitions, availability2)
            )
            continue
        line1 = build_state_space(build_line1(configuration.strategy, configuration.crews))
        availability1 = steady_state_availability(line1)
        rows.append(
            (
                configuration.label,
                line1.num_states,
                line1.num_transitions,
                line2.num_states,
                line2.num_transitions,
                availability1,
                availability2,
                combined_availability([availability1, availability2]),
            )
        )

    if args.fast:
        headers = ("strategy", "line2 states", "line2 transitions", "line2 availability")
        title = "Repair strategies, Line 2 only"
    else:
        headers = (
            "strategy",
            "line1 states",
            "line1 transitions",
            "line2 states",
            "line2 transitions",
            "line1 availability",
            "line2 availability",
            "combined",
        )
        title = "Repair strategies for the water-treatment facility (Tables 1 and 2)"
    print(format_table(headers, rows, title=title))

    best = max(rows, key=lambda row: row[-1])
    print(
        f"\nHighest availability: {best[0]} — but note (as the paper does) that dedicated "
        "repair needs one crew per component; among the realistic strategies the two-crew "
        "variants come within a fraction of a percent of it."
    )


if __name__ == "__main__":
    main()
