"""Quickstart: model a tiny repairable system and evaluate it three ways.

The example builds a two-component Arcade model (a pump with a cold standby
spare and a controller), defines when the system is down, and then

1. computes availability and reliability from the CTMC,
2. asks the same questions through the CSL model checker, and
3. exports the model as PRISM source text, the way the paper's tool chain
   would hand it to PRISM.

Run with::

    python examples/quickstart.py
"""

from repro.arcade import (
    ArcadeModel,
    BasicComponent,
    BasicEvent,
    FaultTree,
    KOfN,
    Or,
    RepairUnit,
    SpareManagementUnit,
    build_state_space,
)
from repro.arcade.to_modules import arcade_to_modules
from repro.csl import ModelChecker
from repro.measures import reliability, steady_state_availability
from repro.modules import export_prism_model


def build_model() -> ArcadeModel:
    """A pump pair (one needed, one cold spare) feeding a controller."""
    pump_a = BasicComponent("pump_a", mttf=500.0, mttr=4.0, component_class="pump")
    pump_b = BasicComponent(
        "pump_b", mttf=500.0, mttr=4.0, component_class="pump", dormancy_factor=0.0
    )
    controller = BasicComponent("controller", mttf=2000.0, mttr=8.0)

    repair = RepairUnit(
        "workshop",
        strategy="fastest_repair_first",
        components=("pump_a", "pump_b", "controller"),
        crews=1,
    )
    spare = SpareManagementUnit("pumps", components=("pump_a", "pump_b"), required=1)

    # Down when both pumps are failed or the controller is failed.
    fault_tree = FaultTree(
        Or(
            KOfN(2, [BasicEvent("pump_a"), BasicEvent("pump_b")]),
            BasicEvent("controller"),
        )
    )
    return ArcadeModel(
        name="quickstart",
        components=(pump_a, pump_b, controller),
        repair_units=(repair,),
        spare_units=(spare,),
        fault_tree=fault_tree,
    )


def main() -> None:
    model = build_model()
    space = build_state_space(model)
    print(f"model {model.name!r}: {space.num_states} states, {space.num_transitions} transitions")

    # 1. direct measures
    availability = steady_state_availability(space)
    print(f"steady-state availability      : {availability:.6f}")
    print(f"reliability for a 1000 h shift : {reliability(model, 1000.0):.6f}")

    # 2. the same questions as CSL queries
    checker = ModelChecker(space.reward_model)
    queries = [
        'S=? [ "operational" ]',
        'P=? [ true U<=1000 "down" ]',
        'R{"cost"}=? [ C<=1000 ]',
    ]
    for query in queries:
        print(f"{query:31s}: {checker.check(query):.6f}")

    # 3. export to PRISM for an external cross-check
    prism_source = export_prism_model(arcade_to_modules(model), description="quickstart example")
    print("\n--- PRISM model (excerpt) ---")
    print("\n".join(prism_source.splitlines()[:20]))


if __name__ == "__main__":
    main()
