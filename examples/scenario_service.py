"""Multiple async clients sharing ONE scenario service.

This example runs the paper's survivability scenarios the way a production
deployment would: a single :class:`repro.service.ScenarioService` owns the
analysis machinery, and several concurrent *clients* — here asyncio tasks,
in a real deployment request handlers — submit their own measure requests
and await their own results:

* each client submits a whole curve family (a registered scenario name or
  hand-built :class:`repro.analysis.MeasureRequest` objects) and gets back
  exactly its slice of the shared computation;
* the dispatcher coalesces submissions across clients for a short window
  (or until the batch-size cap), so identical/compatible curves requested
  by different clients ride one uniformization sweep — N clients cost no
  more sweeps than one batched session;
* absorbing transforms, lumping quotients, uniformized operators and
  Fox–Glynn windows live in a process-wide, bounded
  :class:`repro.service.ArtifactCache` keyed by chain fingerprints, so the
  second round below recomputes none of them (watch the cache-miss deltas
  in the output).

Run with::

    python examples/scenario_service.py [--clients N] [--rounds K] [--points N]
"""

import argparse
import asyncio

from repro.service import ArtifactCache, ScenarioService, paper_registry


async def client(service: ScenarioService, name: str, scenario: str, points: int):
    """One client: submit a scenario family, await it, report a headline."""
    pairs = await service.submit_scenario(scenario, points=points)
    # Every result is this client's own slice; tags identify the curves as
    # (..., interval_index, strategy_label).
    final_values = {
        (request.tag[-2], request.tag[-1]): float(result.squeezed[-1])
        for request, result in pairs
    }
    interval_index, strategy = max(final_values, key=final_values.get)
    return (
        f"  {name}: {scenario} -> {len(pairs)} curves, best at horizon: "
        f"{strategy} to X{interval_index + 1} "
        f"({final_values[(interval_index, strategy)]:.4f})"
    )


async def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=3, help="concurrent clients")
    parser.add_argument("--rounds", type=int, default=2, help="portfolio rounds")
    parser.add_argument("--points", type=int, default=31, help="grid points")
    args = parser.parse_args()

    cache = ArtifactCache()
    service = ScenarioService(
        lump=True,                 # solve every group on its cached quotient
        coalesce_window=0.05,      # collect submissions for 50 ms ...
        max_batch=256,             # ... or until 256 requests are pending
        artifacts=cache,
        registry=paper_registry(),
    )
    async with service:
        for round_index in range(args.rounds):
            before = cache.stats()
            reports = await asyncio.gather(
                *(
                    client(service, f"client-{index}", scenario, args.points)
                    for index in range(args.clients)
                    for scenario in ("fig4_5", "fig8_9")
                )
            )
            print(f"round {round_index + 1}:")
            for report in reports:
                print(report)
            deltas = cache.stats().misses_since(before)
            print(f"  cache misses this round: {deltas}")
        print(f"[{service.stats.summary()}]")
        print(f"[{cache.stats().summary()}]")


if __name__ == "__main__":
    asyncio.run(main())
