"""Quantitative survivability after a disaster (Figures 8 and 9 of the paper).

The example analyses Line 2 of the water-treatment facility after
Disaster 2 (two pumps, one softener, one sand filter and the reservoir have
failed):

* it lists the attainable service levels and the service intervals
  X1 ... X4 they induce,
* it computes, for a selection of repair strategies, the probability of
  recovering to the lowest and to the second-highest service interval
  within t hours, and prints the curves as ASCII plots,
* it shows the cost trade-off by printing the accumulated repair cost after
  the disaster.

Run with::

    python examples/survivability_analysis.py [--horizon HOURS]

.. deprecated::
    This example evaluates one ``survivability_curve`` call per curve — the
    per-call idiom.  It keeps working (every per-call function is now a thin
    wrapper over a one-request analysis session), but for curve families
    prefer declaring ``survivability_request`` objects and executing them in
    one ``repro.analysis.AnalysisSession`` so compatible curves share their
    uniformization sweeps — see ``examples/batched_sweep.py``.
"""

import argparse

import numpy as np

from repro.arcade import build_state_space
from repro.casestudy import DISASTER_2, build_line2
from repro.casestudy.reporting import ascii_plot, format_table
from repro.measures import (
    accumulated_cost,
    service_intervals,
    survivability_curve,
)

STRATEGIES = (
    ("DED", "dedicated", 1),
    ("FRF-1", "fastest_repair_first", 1),
    ("FRF-2", "fastest_repair_first", 2),
    ("FFF-1", "fastest_failure_first", 1),
    ("FFF-2", "fastest_failure_first", 2),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=float, default=100.0, help="time horizon in hours")
    parser.add_argument("--points", type=int, default=41, help="grid points per curve")
    args = parser.parse_args()

    intervals = service_intervals(build_line2())
    print("Service intervals of Line 2 (X1 ... X4):")
    for index, (low, high) in enumerate(intervals, start=1):
        rendering = f"[{low}, {high})" if low != high else f"[{low}, {high}]"
        print(f"  X{index} = {rendering}")
    print()

    spaces = {
        label: build_state_space(build_line2(strategy, crews))
        for label, strategy, crews in STRATEGIES
    }

    for interval_name, interval_index in (("X1", 0), ("X3", 2)):
        threshold = intervals[interval_index][0]
        series = {}
        times = np.linspace(0.0, args.horizon, args.points)
        for label, space in spaces.items():
            _, values = survivability_curve(
                space, DISASTER_2, threshold, args.horizon, args.points
            )
            series[label] = values
        print(
            ascii_plot(
                times,
                series,
                title=f"Recovery of Line 2 to service interval {interval_name} after Disaster 2",
                y_label="P(recovered)",
            )
        )
        print()

    rows = []
    for label, space in spaces.items():
        rows.append(
            (
                label,
                accumulated_cost(space, 10.0, DISASTER_2),
                accumulated_cost(space, args.horizon, DISASTER_2),
            )
        )
    print(
        format_table(
            ("strategy", "cost after 10 h", f"cost after {args.horizon:g} h"),
            rows,
            title="Accumulated repair cost after Disaster 2",
        )
    )


if __name__ == "__main__":
    main()
