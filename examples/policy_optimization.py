"""Optimize the repair-assignment policy instead of picking a fixed strategy.

The paper compares five *fixed* repair strategies (DED, FRF-1/2, FFF-1/2).
This example asks the stronger question: which repair assignment is actually
best?  It walks through both optimizers of :mod:`repro.optimize` on Line 2
of the water-treatment facility:

* **Exact policy iteration** on the repair CTMDP for a long-run objective
  (here: unavailability with every repair unit capped at one crew, where
  the fixed strategies genuinely differ from the optimum).  Policy
  evaluation is a cached stacked-RHS gain/bias solve; improvement scores
  every admissible action at once.
* **Rollout** for a finite-horizon objective (survivability: probability of
  recovering to service interval X1 within ``t`` hours of Disaster 2).
  Each round scores *all* candidate one-step deviations off a single
  coalesced identity-block sweep of the batched evaluator.

Run with::

    python examples/policy_optimization.py [--crews N] [--horizon HOURS]
"""

import argparse

from repro.casestudy import DISASTER_2
from repro.casestudy.experiments import line_service_interval_lower
from repro.casestudy.facility import LINE2, build_line
from repro.casestudy.reporting import format_table
from repro.ctmc.linsolve import SolverEngine
from repro.optimize import (
    OptimizerStats,
    RepairCTMDP,
    default_candidates,
    evaluate_policy,
    policy_iteration,
    rollout_optimize,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--crews",
        type=int,
        default=1,
        metavar="N",
        help="crew cap per repair unit for the long-run part (default: 1)",
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=24.0,
        help="survivability horizon in hours for the rollout part (default: 24)",
    )
    args = parser.parse_args()

    # ------------------------------------------------------------------
    # Part 1: long-run unavailability under a crew budget (policy iteration)
    # ------------------------------------------------------------------
    ctmdp = RepairCTMDP(build_line(LINE2), crew_limit=args.crews)
    print(
        f"{ctmdp.model.name} with {args.crews} crew(s) per unit: "
        f"{ctmdp.num_states} CTMDP states, {ctmdp.total_actions} admissible actions"
    )

    stats = OptimizerStats()
    engine = SolverEngine()
    rows = []
    best_label, best_policy, best_gain = None, None, None
    for label, policy in default_candidates(ctmdp).items():
        evaluation = evaluate_policy(ctmdp, policy, engine=engine, stats=stats)
        gain = evaluation.gains["unavailability"]
        rows.append((label, f"{gain:.9f}", f"{evaluation.gains['cost_rate']:.4f}"))
        if best_gain is None or gain < best_gain:
            best_label, best_policy, best_gain = label, policy, gain
    result = policy_iteration(
        ctmdp, objective="unavailability", initial=best_policy, engine=engine, stats=stats
    )
    rows.append(("OPT", f"{result.gain:.9f}", f"{result.gains['cost_rate']:.4f}"))
    print(
        format_table(
            ["policy", "unavailability", "cost rate"],
            rows,
            title=f"Long-run objectives at {args.crews} crew(s) per unit",
        )
    )
    print(
        f"policy iteration converged in {result.iterations} iteration(s) from "
        f"{best_label}: unavailability {best_gain:.9f} -> {result.gain:.9f}"
    )

    # ------------------------------------------------------------------
    # Part 2: survivability after Disaster 2 (coalesced rollout)
    # ------------------------------------------------------------------
    full = RepairCTMDP(build_line(LINE2))  # unlimited crews: paper's full space
    rollout = rollout_optimize(
        full,
        "survivability",
        disaster=DISASTER_2,
        horizon=args.horizon,
        threshold=line_service_interval_lower(LINE2, 0),
        stats=stats,
    )
    rows = sorted(rollout.baselines.items(), key=lambda item: -item[1])
    rows = [(label, f"{value:.9f}") for label, value in rows]
    rows.append(("OPT", f"{rollout.value:.9f}"))
    print(
        format_table(
            ["policy", "P(service >= X1)"],
            rows,
            title=f"Recovery to X1 within {args.horizon:g} h of {DISASTER_2}",
        )
    )
    print(
        f"rollout scored {stats.candidate_actions} candidate deviations on "
        f"{stats.coalesced_sweeps} coalesced sweep(s) "
        f"({stats.sweeps_saved} sweeps saved); optimized policy is "
        f"{'new' if rollout.improved else 'a fixed strategy'}"
    )


if __name__ == "__main__":
    main()
